package ctl_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	capi "capi"
	"capi/internal/ctl"
)

const wideSpec = `!import("mpi.capi")
excluded = join(inSystemHeader(%%), inlineSpecified(%%))
subtract(%mpi_comm, %excluded)
`

const narrowSpec = `!import("mpi.capi")
excluded = join(inSystemHeader(%%), inlineSpecified(%%))
coarse(subtract(%mpi_comm, %excluded))
`

// newServer starts a control-plane server over a freshly started instance.
func newServer(t *testing.T, p *capi.Program, app string, opts capi.RunOptions) (*httptest.Server, *capi.Session, *capi.Instance) {
	t.Helper()
	session, err := capi.NewSession(p, capi.SessionOptions{OptLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	sel, err := session.Select(wideSpec)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := session.Start(sel, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(ctl.New(session, inst, app))
	t.Cleanup(ts.Close)
	return ts, session, inst
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw := new(bytes.Buffer)
	raw.ReadFrom(resp.Body) //nolint:errcheck
	return resp, raw.Bytes()
}

// errorField decodes a {"error": ..., "field": ...} error body and returns
// the named field — every 400 a client can fix by editing one request
// field must carry one.
func errorField(t *testing.T, body []byte) string {
	t.Helper()
	var e struct {
		Error string `json:"error"`
		Field string `json:"field"`
	}
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("error body is not JSON: %v in %s", err, body)
	}
	if e.Error == "" {
		t.Fatalf("error body without error message: %s", body)
	}
	return e.Field
}

var reconfigsTotalRe = regexp.MustCompile(`(?m)^capi_reconfigs_total (\d+)$`)

func scrapeReconfigs(t *testing.T, base string) int {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	raw := new(bytes.Buffer)
	raw.ReadFrom(resp.Body) //nolint:errcheck
	m := reconfigsTotalRe.FindSubmatch(raw.Bytes())
	if m == nil {
		t.Fatalf("capi_reconfigs_total missing from:\n%s", raw.String())
	}
	n, err := strconv.Atoi(string(m[1]))
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestStatusAndSelection(t *testing.T) {
	ts, _, inst := newServer(t, capi.Quickstart(), "quickstart",
		capi.RunOptions{Backend: capi.BackendTALP, Ranks: 2})
	var st ctl.StatusResponse
	getJSON(t, ts.URL+"/v1/status", &st)
	if st.App != "quickstart" || !st.Instrumented || st.Backend != capi.BackendTALP || st.Ranks != 2 {
		t.Fatalf("status = %+v", st)
	}
	if st.ActiveFunctions != inst.ActiveFunctions() || st.ActiveFunctions == 0 {
		t.Fatalf("active = %d, instance says %d", st.ActiveFunctions, inst.ActiveFunctions())
	}
	var sel ctl.SelectionResponse
	getJSON(t, ts.URL+"/v1/selection", &sel)
	if sel.Count != st.ActiveFunctions || len(sel.Functions) != sel.Count {
		t.Fatalf("selection = %+v, want %d functions", sel, st.ActiveFunctions)
	}
}

func TestSelectMalformedSpecReturns400WithParseError(t *testing.T) {
	ts, _, _ := newServer(t, capi.Quickstart(), "quickstart",
		capi.RunOptions{Backend: capi.BackendTALP, Ranks: 2})
	resp, err := http.Post(ts.URL+"/v1/select", "text/plain",
		strings.NewReader("this = is(not a valid((( spec"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	raw := new(bytes.Buffer)
	raw.ReadFrom(resp.Body) //nolint:errcheck
	if !strings.Contains(raw.String(), "compiling spec") {
		t.Fatalf("body does not carry the compile error: %s", raw.String())
	}
	// An empty body is also a 400, with a distinct message.
	resp2, body2 := postJSON(t, ts.URL+"/v1/select", ctl.SelectRequest{})
	if resp2.StatusCode != http.StatusBadRequest || !strings.Contains(string(body2), "empty selection") {
		t.Fatalf("empty select: %d %s", resp2.StatusCode, body2)
	}
}

func TestSelectByIncludeListAndBuiltin(t *testing.T) {
	ts, _, inst := newServer(t, capi.Quickstart(), "quickstart",
		capi.RunOptions{Backend: capi.BackendTALP, Ranks: 2})
	names := inst.ActiveFunctionNames()
	if len(names) < 3 {
		t.Fatalf("too few active functions: %v", names)
	}
	resp, body := postJSON(t, ts.URL+"/v1/select", ctl.SelectRequest{Include: names[:3]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("include select: %d %s", resp.StatusCode, body)
	}
	var sr ctl.SelectResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Active != 3 || inst.ActiveFunctions() != 3 {
		t.Fatalf("active = %d (instance %d), want 3", sr.Active, inst.ActiveFunctions())
	}
	if sr.Report.Seq != 1 {
		t.Fatalf("report seq = %d", sr.Report.Seq)
	}
	// Builtin name → compiled spec, selection summary included.
	resp, body = postJSON(t, ts.URL+"/v1/select", ctl.SelectRequest{Builtin: "mpi"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("builtin select: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Selection == nil || sr.Selection.Selected == 0 {
		t.Fatalf("builtin select carries no selection summary: %s", body)
	}
	resp, body = postJSON(t, ts.URL+"/v1/select", ctl.SelectRequest{Builtin: "no-such-spec"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown builtin: %d %s", resp.StatusCode, body)
	}
	// A typo'd include name must be rejected, not silently unpatch the
	// whole selection.
	resp, body = postJSON(t, ts.URL+"/v1/select",
		ctl.SelectRequest{Include: []string{names[0], "no_such_function"}})
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "no_such_function") {
		t.Fatalf("typo'd include: %d %s", resp.StatusCode, body)
	}
	if got := inst.ActiveFunctions(); got == 0 {
		t.Fatal("typo'd include wiped the selection")
	}
}

func TestRunPhaseAndReport(t *testing.T) {
	ts, _, _ := newServer(t, capi.Quickstart(), "quickstart",
		capi.RunOptions{Backend: capi.BackendTALP, Ranks: 2})
	resp, body := postJSON(t, ts.URL+"/v1/run", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: %d %s", resp.StatusCode, body)
	}
	var sum ctl.RunSummary
	if err := json.Unmarshal(body, &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Phase != 1 || sum.Events == 0 || sum.InitSeconds <= 0 {
		t.Fatalf("summary = %+v", sum)
	}
	var rep ctl.ReportResponse
	getJSON(t, ts.URL+"/v1/report", &rep)
	if rep.Backend != capi.BackendTALP || len(rep.Backends) != 1 || rep.Backends[0] != "talp" {
		t.Fatalf("report = %+v", rep)
	}
	entry, ok := rep.Reports["talp"]
	if !ok || entry.Kind != "talp" || !bytes.Contains(entry.Report, []byte("regions")) {
		t.Fatalf("talp entry = %+v (reports %v)", entry, rep.Reports)
	}
	var st ctl.StatusResponse
	getJSON(t, ts.URL+"/v1/status", &st)
	if st.Runs != 1 || st.LastRun == nil || st.LastRun.Events != sum.Events {
		t.Fatalf("status after run = %+v", st)
	}
}

func TestAdaptRetuneOverHTTP(t *testing.T) {
	// Without a controller: 409.
	ts, _, _ := newServer(t, capi.Quickstart(), "quickstart",
		capi.RunOptions{Backend: capi.BackendTALP, Ranks: 2})
	resp, body := postJSON(t, ts.URL+"/v1/adapt", ctl.AdaptRequest{Budget: 0.2})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("adapt without controller: %d %s", resp.StatusCode, body)
	}
	// With one: the retune round-trips.
	ts2, _, _ := newServer(t, capi.Quickstart(), "quickstart",
		capi.RunOptions{Backend: capi.BackendTALP, Ranks: 2, Adapt: &capi.AdaptOptions{Budget: 0.05}})
	resp, body = postJSON(t, ts2.URL+"/v1/adapt", ctl.AdaptRequest{Budget: 0.2, EpochSeconds: 0.002})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("adapt: %d %s", resp.StatusCode, body)
	}
	var ar ctl.AdaptResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Budget != 0.2 || ar.EpochSeconds != 0.002 {
		t.Fatalf("effective tuning = %+v", ar)
	}
}

// TestRemoteReselectionMidPhase is the end-to-end acceptance test: a phase
// executes on the live instance while a narrower selection arrives over
// HTTP. The response must carry the ReconfigReport, the active set must
// shrink, and /metrics must reflect the advanced reconfig counter.
func TestRemoteReselectionMidPhase(t *testing.T) {
	// Enough timesteps that the phase is still executing when the select
	// lands (the delta assertions hold either way — whether genuine overlap
	// was achieved is detected below and gates the mid-phase assertion).
	ts, _, inst := newServer(t, capi.Lulesh(capi.LuleshOptions{Timesteps: 12000}), "lulesh",
		capi.RunOptions{Backend: capi.BackendTALP, Ranks: 2})
	activeBefore := inst.ActiveFunctions()
	if before := scrapeReconfigs(t, ts.URL); before != 0 {
		t.Fatalf("fresh instance reports %d reconfigs", before)
	}

	wait := false
	resp, body := postJSON(t, ts.URL+"/v1/run", ctl.RunRequest{Wait: &wait})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async run: %d %s", resp.StatusCode, body)
	}
	// A second run while one executes is rejected.
	resp, body = postJSON(t, ts.URL+"/v1/run", nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("concurrent run: %d %s", resp.StatusCode, body)
	}

	// Wait until the phase is observably executing, then re-select.
	for i := 0; i < 200; i++ {
		var st ctl.StatusResponse
		getJSON(t, ts.URL+"/v1/status", &st)
		if st.Running || st.Runs > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	resp, body = postJSON(t, ts.URL+"/v1/select", ctl.SelectRequest{Spec: narrowSpec})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("select: %d %s", resp.StatusCode, body)
	}
	var sr ctl.SelectResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	// (a) the response carries the reconfiguration report…
	if sr.Report.Seq != 1 || sr.Report.Unpatched == 0 {
		t.Fatalf("reconfig report = %+v", sr.Report)
	}
	// (b) …the active set shrank…
	if sr.Active >= activeBefore || inst.ActiveFunctions() != sr.Active {
		t.Fatalf("active %d (was %d), instance says %d", sr.Active, activeBefore, inst.ActiveFunctions())
	}
	// (c) …and /metrics reflects the new reconfig count.
	if got := scrapeReconfigs(t, ts.URL); got != 1 {
		t.Fatalf("capi_reconfigs_total = %d, want 1", got)
	}
	// If the phase is still executing now, the re-selection provably landed
	// mid-phase, so the phase's own result must report it.
	var mid ctl.StatusResponse
	getJSON(t, ts.URL+"/v1/status", &mid)
	overlapped := mid.Running

	// Let the phase drain and check the run was recorded. LastRun lags the
	// runs counter by an instant, so poll for the summary itself.
	deadline := time.Now().Add(60 * time.Second)
	for {
		var st ctl.StatusResponse
		getJSON(t, ts.URL+"/v1/status", &st)
		if st.LastError != "" {
			t.Fatalf("phase failed: %s", st.LastError)
		}
		if !st.Running && st.LastRun != nil {
			if st.Runs != 1 {
				t.Fatalf("runs = %d after one phase", st.Runs)
			}
			if overlapped && st.LastRun.Reconfigs != 1 {
				t.Fatalf("mid-phase reconfigure not visible in phase result: %+v", st.LastRun)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("phase never completed: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !overlapped {
		t.Log("note: phase finished before the select landed; delta path still verified")
	}
}

// TestMultiBackendReportEnvelope: one run with talp+extrae attached must
// produce the unified envelope with both keys, each entry self-describing
// its kind.
func TestMultiBackendReportEnvelope(t *testing.T) {
	ts, _, inst := newServer(t, capi.Quickstart(), "quickstart",
		capi.RunOptions{Backends: []string{"talp", "extrae"}, Ranks: 2})
	resp, body := postJSON(t, ts.URL+"/v1/run", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: %d %s", resp.StatusCode, body)
	}
	var rep ctl.ReportResponse
	getJSON(t, ts.URL+"/v1/report", &rep)
	if len(rep.Backends) != 2 || rep.Backends[0] != "talp" || rep.Backends[1] != "extrae" {
		t.Fatalf("report backends = %v", rep.Backends)
	}
	talpEntry, ok := rep.Reports["talp"]
	if !ok || talpEntry.Kind != "talp" || !bytes.Contains(talpEntry.Report, []byte("regions")) {
		t.Fatalf("talp entry = %+v", talpEntry)
	}
	traceEntry, ok := rep.Reports["extrae"]
	if !ok || traceEntry.Kind != "trace" || !bytes.Contains(traceEntry.Report, []byte("Timeline")) {
		t.Fatalf("extrae entry = %+v", traceEntry)
	}
	// Both backends saw the same event stream.
	var st ctl.StatusResponse
	getJSON(t, ts.URL+"/v1/status", &st)
	if len(st.Backends) != 2 || st.Events == 0 {
		t.Fatalf("status = %+v", st)
	}
	if inst.TALPReport() == nil || inst.TraceReport() == nil {
		t.Fatal("deprecated typed accessors must still see the built-ins")
	}
}

// TestBackendSwapOverHTTP: POST /v1/select with a "backends" list swaps the
// measurement set of the live instance — with no selection source at all —
// and unknown names come back as a 400 listing the registry.
func TestBackendSwapOverHTTP(t *testing.T) {
	ts, _, inst := newServer(t, capi.Quickstart(), "quickstart",
		capi.RunOptions{Backend: capi.BackendTALP, Ranks: 2})
	resp, body := postJSON(t, ts.URL+"/v1/select", ctl.SelectRequest{Backends: []string{"scorep", "extrae"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("swap: %d %s", resp.StatusCode, body)
	}
	var sr ctl.SelectResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.BackendSwap == nil || sr.BackendSwap.From != "talp" || sr.BackendSwap.To != "mux(scorep,extrae)" {
		t.Fatalf("swap report = %+v", sr.BackendSwap)
	}
	if len(sr.Backends) != 2 || sr.Backends[0] != "scorep" {
		t.Fatalf("backends after swap = %v", sr.Backends)
	}
	if got := inst.Backends(); len(got) != 2 || got[0] != "scorep" || got[1] != "extrae" {
		t.Fatalf("instance backends = %v", got)
	}
	// The next phase measures under the new set.
	resp, body = postJSON(t, ts.URL+"/v1/run", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run after swap: %d %s", resp.StatusCode, body)
	}
	var rep ctl.ReportResponse
	getJSON(t, ts.URL+"/v1/report", &rep)
	if _, ok := rep.Reports["scorep"]; !ok {
		t.Fatalf("no scorep report after swap: %v", rep.Backends)
	}
	if _, ok := rep.Reports["talp"]; ok {
		t.Fatal("detached talp backend still reporting")
	}
	// Unknown names fail fast, listing the registered backends.
	resp, body = postJSON(t, ts.URL+"/v1/select", ctl.SelectRequest{Backends: []string{"no-such-backend"}})
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "registered:") {
		t.Fatalf("unknown backend swap: %d %s", resp.StatusCode, body)
	}
	// An adaptive instance refuses the swap: the controller owns the chain.
	ts2, _, _ := newServer(t, capi.Quickstart(), "quickstart",
		capi.RunOptions{Backend: capi.BackendTALP, Ranks: 2, Adapt: &capi.AdaptOptions{Budget: 0.5}})
	resp, body = postJSON(t, ts2.URL+"/v1/select", ctl.SelectRequest{Backends: []string{"extrae"}})
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "adaptive") {
		t.Fatalf("adaptive swap: %d %s", resp.StatusCode, body)
	}
}

// TestRemoteReselectionMidPhaseMultiBackend: the e2e acceptance path for
// the fan-out — a long phase executes under talp+scorep+extrae while a
// narrower selection lands over HTTP. The ReconfigReport must carry the
// per-backend synthetic-exit breakdown, summing to the total, and when
// ranks were caught inside deselected functions both stateful backends
// must have closed their share.
func TestRemoteReselectionMidPhaseMultiBackend(t *testing.T) {
	// Fewer timesteps than the single-backend variant: the three-way fan-out
	// dispatches every event thrice, so the phase is long enough for the
	// select to land mid-phase well before 12000 steps.
	ts, _, inst := newServer(t, capi.Lulesh(capi.LuleshOptions{Timesteps: 4000}), "lulesh",
		capi.RunOptions{Backends: []string{"talp", "scorep", "extrae"}, Ranks: 2})

	wait := false
	resp, body := postJSON(t, ts.URL+"/v1/run", ctl.RunRequest{Wait: &wait})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async run: %d %s", resp.StatusCode, body)
	}
	for i := 0; i < 200; i++ {
		var st ctl.StatusResponse
		getJSON(t, ts.URL+"/v1/status", &st)
		if st.Running || st.Runs > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	resp, body = postJSON(t, ts.URL+"/v1/select", ctl.SelectRequest{Spec: narrowSpec})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("select: %d %s", resp.StatusCode, body)
	}
	var sr ctl.SelectResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Report.Unpatched == 0 {
		t.Fatalf("nothing deselected: %+v", sr.Report)
	}
	sum := 0
	for _, n := range sr.Report.SyntheticExitsByBackend {
		sum += n
	}
	if sum != sr.Report.SyntheticExits {
		t.Fatalf("per-backend exits %v sum to %d, total %d",
			sr.Report.SyntheticExitsByBackend, sum, sr.Report.SyntheticExits)
	}
	if sr.Report.SyntheticExits > 0 {
		by := sr.Report.SyntheticExitsByBackend
		if by["talp"] == 0 || by["scorep"] == 0 {
			t.Fatalf("synthetic exits missing on a mux backend: %v", by)
		}
		if _, ok := by["extrae"]; ok {
			t.Fatalf("extrae keeps no open state but appears in %v", by)
		}
	} else {
		t.Log("note: no rank was inside a deselected function; breakdown invariant still verified")
	}

	// Drain the phase; the run must complete cleanly under the mux.
	deadline := time.Now().Add(60 * time.Second)
	for {
		var st ctl.StatusResponse
		getJSON(t, ts.URL+"/v1/status", &st)
		if st.LastError != "" {
			t.Fatalf("phase failed: %s", st.LastError)
		}
		if !st.Running && st.LastRun != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("phase never completed: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// All three backends report on the same (re-selected) stream.
	var rep ctl.ReportResponse
	getJSON(t, ts.URL+"/v1/report", &rep)
	for _, name := range []string{"talp", "scorep", "extrae"} {
		if _, ok := rep.Reports[name]; !ok {
			t.Fatalf("backend %q missing from envelope (%v)", name, rep.Backends)
		}
	}
	if got := inst.SyntheticExitsByBackend(); len(got) > 0 {
		var total int64
		for _, n := range got {
			total += n
		}
		if total != inst.SyntheticExits() {
			t.Fatalf("cumulative breakdown %v != total %d", got, inst.SyntheticExits())
		}
	}
}

// TestSSEDeliversOneEventPerReconfigure subscribes to /v1/events and
// applies three re-selections; exactly three "reconfigure" events with
// increasing sequence numbers must arrive.
func TestSSEDeliversOneEventPerReconfigure(t *testing.T) {
	ts, _, _ := newServer(t, capi.Quickstart(), "quickstart",
		capi.RunOptions{Backend: capi.BackendTALP, Ranks: 2})

	req, err := http.NewRequest("GET", ts.URL+"/v1/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	type sse struct {
		name string
		data string
	}
	events := make(chan sse, 16)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		var cur sse
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				cur.name = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				cur.data = strings.TrimPrefix(line, "data: ")
			case line == "" && cur.name != "":
				events <- cur
				cur = sse{}
			}
		}
	}()

	// The subscription is registered before the handler writes its hello
	// comment; once we can see the client counted, reconfigure three times.
	for i := 0; i < 200; i++ {
		respM, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		raw := new(bytes.Buffer)
		raw.ReadFrom(respM.Body) //nolint:errcheck
		respM.Body.Close()
		if strings.Contains(raw.String(), "capi_sse_clients 1") {
			break
		}
		time.Sleep(time.Millisecond)
	}

	specs := []string{narrowSpec, wideSpec, narrowSpec}
	for _, spec := range specs {
		resp, body := postJSON(t, ts.URL+"/v1/select", ctl.SelectRequest{Spec: spec})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("select: %d %s", resp.StatusCode, body)
		}
	}

	for i := 1; i <= len(specs); i++ {
		select {
		case ev := <-events:
			if ev.name != "reconfigure" {
				t.Fatalf("event %d: name %q", i, ev.name)
			}
			var rep capi.ReconfigReport
			if err := json.Unmarshal([]byte(ev.data), &rep); err != nil {
				t.Fatalf("event %d: %v in %s", i, err, ev.data)
			}
			if rep.Seq != i {
				t.Fatalf("event %d carries seq %d", i, rep.Seq)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("timed out waiting for reconfigure event %d", i)
		}
	}
	select {
	case ev := <-events:
		t.Fatalf("unexpected extra event: %+v", ev)
	case <-time.After(50 * time.Millisecond):
	}
}

// TestShutdownDisconnectsSSEClients: http.Server.Shutdown never cancels
// in-flight request contexts, so Server.Shutdown must unblock open event
// streams itself or graceful shutdown would hang until its timeout.
func TestShutdownDisconnectsSSEClients(t *testing.T) {
	session, err := capi.NewSession(capi.Quickstart(), capi.SessionOptions{OptLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	sel, err := session.Select(wideSpec)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := session.Start(sel, capi.RunOptions{Backend: capi.BackendTALP, Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	cp := ctl.New(session, inst, "quickstart")
	ts := httptest.NewServer(cp)
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/v1/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	done := make(chan error, 1)
	go func() {
		_, err := io.Copy(io.Discard, resp.Body)
		done <- err
	}()
	cp.Shutdown()
	select {
	case <-done:
		// stream ended promptly — graceful shutdown can drain
	case <-time.After(10 * time.Second):
		t.Fatal("SSE stream still open after Shutdown")
	}
	// Late subscribers get an immediately closed stream, not a hang.
	resp2, err := http.Get(ts.URL + "/v1/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	buf := make([]byte, 1024)
	for {
		if _, err := resp2.Body.Read(buf); err != nil {
			break
		}
	}
}

func TestIndexListsEndpoints(t *testing.T) {
	ts, _, _ := newServer(t, capi.Quickstart(), "quickstart",
		capi.RunOptions{Backend: capi.BackendTALP, Ranks: 2})
	var idx struct {
		App       string   `json:"app"`
		Endpoints []string `json:"endpoints"`
	}
	getJSON(t, ts.URL+"/", &idx)
	if idx.App != "quickstart" || len(idx.Endpoints) < 8 {
		t.Fatalf("index = %+v", idx)
	}
	// Unknown paths 404.
	resp, err := http.Get(ts.URL + "/v1/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path: %d", resp.StatusCode)
	}
}

// TestHealthz pins the liveness probe: 200 with the app name and a
// moving uptime, and — because fleet coordinators hit it on every probe
// tick — it must answer while a phase is executing, when /v1/status
// contends on the instance lock.
func TestHealthz(t *testing.T) {
	ts, _, _ := newServer(t, capi.Quickstart(), "quickstart",
		capi.RunOptions{Backend: capi.BackendTALP, Ranks: 2})
	var hz ctl.HealthzResponse
	getJSON(t, ts.URL+"/v1/healthz", &hz)
	if !hz.OK || hz.App != "quickstart" || hz.UptimeSeconds < 0 {
		t.Fatalf("healthz = %+v", hz)
	}

	// Probe while a phase runs: the handler takes no instance lock, so a
	// busy member still reports live.
	wait := false
	resp, body := postJSON(t, ts.URL+"/v1/run", ctl.RunRequest{Wait: &wait})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("run: %d %s", resp.StatusCode, body)
	}
	getJSON(t, ts.URL+"/v1/healthz", &hz)
	if !hz.OK {
		t.Fatal("healthz not OK during a running phase")
	}
}

// TestSamplingEndpoint drives POST /v1/sampling end-to-end: install a
// table, see it on /v1/status and /metrics, run a sampled phase, and read
// the conservation counters back through the report envelope.
func TestSamplingEndpoint(t *testing.T) {
	ts, _, inst := newServer(t, capi.Quickstart(), "quickstart",
		capi.RunOptions{Backend: capi.BackendTALP, Ranks: 2})

	// The gauge starts at 0 (unsampled).
	if got := scrapeMetric(t, ts.URL, "capi_sampling_default_stride"); got != 0 {
		t.Fatalf("fresh instance stride gauge = %d", got)
	}
	resp, body := postJSON(t, ts.URL+"/v1/sampling", ctl.SamplingRequest{Stride: 16, MinDurationNs: 100})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sampling: %d %s", resp.StatusCode, body)
	}
	var snap capi.SamplingSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if !snap.Configured || snap.Default == nil || snap.Default.Stride != 16 || snap.Default.MinDurationNs != 100 {
		t.Fatalf("snapshot = %+v", snap)
	}
	// The gauge moved the moment the table was installed.
	if got := scrapeMetric(t, ts.URL, "capi_sampling_default_stride"); got != 16 {
		t.Fatalf("stride gauge = %d, want 16", got)
	}
	var st ctl.StatusResponse
	getJSON(t, ts.URL+"/v1/status", &st)
	if st.Sampling == nil || st.Sampling.Default == nil || st.Sampling.Default.Stride != 16 {
		t.Fatalf("status sampling = %+v", st.Sampling)
	}

	// A sampled phase: counters conserve and surface everywhere.
	resp, body = postJSON(t, ts.URL+"/v1/run", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: %d %s", resp.StatusCode, body)
	}
	getJSON(t, ts.URL+"/v1/status", &st)
	c := st.Sampling.Counters
	if c.SampledEvents == 0 || c.Delivered+c.SampledEvents+c.SuppressedPairs+c.CollapsedCalls != c.Enters {
		t.Fatalf("counters do not reconcile: %+v", c)
	}
	// Not just the derived identity: delivery must sit in the
	// per-(function,rank) 1-in-16 ceiling band (min-duration suppression
	// only lowers it further).
	slots := int64(st.ActiveFunctions * st.Ranks)
	if c.Delivered > c.Enters/16+slots {
		t.Fatalf("delivered %d above the 1-in-16 ceiling %d for %d enters",
			c.Delivered, c.Enters/16+slots, c.Enters)
	}
	if got := scrapeMetric(t, ts.URL, "capi_sampled_events_total"); int64(got) != c.SampledEvents {
		t.Fatalf("metrics sampled = %d, status says %d", got, c.SampledEvents)
	}
	var rep ctl.ReportResponse
	getJSON(t, ts.URL+"/v1/report", &rep)
	if rep.Sampling == nil || rep.Sampling.Counters.Enters == 0 {
		t.Fatalf("report envelope missing sampling: %+v", rep.Sampling)
	}
	_ = inst
}

// TestSamplingInvalidSpecLeavesStateUntouched is the no-mutation
// regression for POST /v1/sampling: every 400 — bad JSON, invalid policy
// values, unknown function names — must leave the installed table exactly
// as it was.
func TestSamplingInvalidSpecLeavesStateUntouched(t *testing.T) {
	ts, _, inst := newServer(t, capi.Quickstart(), "quickstart",
		capi.RunOptions{Backend: capi.BackendTALP, Ranks: 2})
	resp, body := postJSON(t, ts.URL+"/v1/sampling", ctl.SamplingRequest{Stride: 8})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("install: %d %s", resp.StatusCode, body)
	}
	assertUntouched := func(when string) {
		t.Helper()
		snap := inst.Sampling()
		if !snap.Configured || snap.Default == nil || snap.Default.Stride != 8 || snap.FuncPolicies != 0 {
			t.Fatalf("%s mutated the table: %+v", when, snap)
		}
	}
	for _, bad := range []struct {
		req   ctl.SamplingRequest
		field string
	}{
		{ctl.SamplingRequest{Stride: -2}, "stride"},
		{ctl.SamplingRequest{MinDurationNs: -5}, "minDurationNs"},
		{ctl.SamplingRequest{Stride: 4, Functions: map[string]capi.SamplingPolicy{"no_such_function": {Stride: 2}}}, "functions"},
		{ctl.SamplingRequest{RedundantGapNs: 100}, "redundantGapNs"}, // gap without collapse
	} {
		resp, body := postJSON(t, ts.URL+"/v1/sampling", bad.req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad request %+v: %d %s", bad.req, resp.StatusCode, body)
		}
		if got := errorField(t, body); got != bad.field {
			t.Fatalf("bad request %+v: 400 names field %q, want %q (body %s)", bad.req, got, bad.field, body)
		}
		assertUntouched("invalid sampling request")
	}
	resp2, err := http.Post(ts.URL+"/v1/sampling", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	raw2 := new(bytes.Buffer)
	raw2.ReadFrom(resp2.Body) //nolint:errcheck
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage body: %d", resp2.StatusCode)
	}
	if got := errorField(t, raw2.Bytes()); got != "body" {
		t.Fatalf("garbage body 400 names field %q, want \"body\"", got)
	}
	assertUntouched("garbage body")
}

// TestSelect400LeavesInstanceUntouched pins the /v1/select no-mutation
// guarantee on *both* failure paths: a selection that fails to compile
// must not apply an accompanying backend swap, and a backend swap that
// fails must not apply an accompanying (valid) selection.
func TestSelect400LeavesInstanceUntouched(t *testing.T) {
	ts, _, inst := newServer(t, capi.Quickstart(), "quickstart",
		capi.RunOptions{Backend: capi.BackendTALP, Ranks: 2})
	activeBefore := inst.ActiveFunctions()
	backendsBefore := inst.Backends()
	names := inst.ActiveFunctionNames()

	// (a) Invalid spec + valid backend swap: the swap must not happen.
	resp, body := postJSON(t, ts.URL+"/v1/select", ctl.SelectRequest{
		Spec:     "this = is(not a valid((( spec",
		Backends: []string{"extrae"},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid spec + swap: %d %s", resp.StatusCode, body)
	}
	if got := errorField(t, body); got != "spec" {
		t.Fatalf("invalid spec 400 names field %q, want \"spec\" (body %s)", got, body)
	}
	if got := inst.Backends(); len(got) != len(backendsBefore) || got[0] != backendsBefore[0] {
		t.Fatalf("failed select swapped backends anyway: %v", got)
	}
	if got := inst.ActiveFunctions(); got != activeBefore {
		t.Fatalf("failed select changed the selection: %d -> %d", activeBefore, got)
	}

	// (b) Valid include list + unknown backend: the selection must not be
	// applied (and the backend set stays).
	resp, body = postJSON(t, ts.URL+"/v1/select", ctl.SelectRequest{
		Include:  names[:2],
		Backends: []string{"no-such-backend"},
	})
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "registered:") {
		t.Fatalf("valid include + bad backend: %d %s", resp.StatusCode, body)
	}
	if got := errorField(t, body); got != "backends" {
		t.Fatalf("bad backend 400 names field %q, want \"backends\" (body %s)", got, body)
	}
	if got := inst.ActiveFunctions(); got != activeBefore {
		t.Fatalf("failed swap applied the selection: %d -> %d", activeBefore, got)
	}
	if got := inst.Backends(); got[0] != backendsBefore[0] {
		t.Fatalf("failed swap changed backends: %v", got)
	}
	if inst.Reconfigs() != 0 {
		t.Fatalf("reconfigs = %d after two 400s", inst.Reconfigs())
	}
}

// ctlSlowBackend is a registered counting backend with a tunable per-event
// delay — slow enough that a tiny async ring provably sheds load during a
// phase. A process-wide singleton so counts survive backend-set swaps.
type ctlSlowBackend struct {
	enters atomic.Int64
	delay  atomic.Int64 // nanoseconds per event
}

func (b *ctlSlowBackend) Name() string { return "ctl-slow" }
func (b *ctlSlowBackend) OnEnter(capi.ThreadCtx, *capi.ResolvedFunc) {
	if d := b.delay.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	b.enters.Add(1)
}
func (b *ctlSlowBackend) OnExit(capi.ThreadCtx, *capi.ResolvedFunc) {
	if d := b.delay.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
}
func (b *ctlSlowBackend) InitCost(int) int64           { return 0 }
func (b *ctlSlowBackend) Events() capi.EventBackend    { return b }
func (b *ctlSlowBackend) StartPhase(*capi.World) error { return nil }
func (b *ctlSlowBackend) Report() capi.Report          { return nil }

var ctlSlow = &ctlSlowBackend{}

func init() {
	capi.RegisterBackend("ctl-slow", func(capi.BackendConfig) (capi.MeasurementBackend, error) {
		return ctlSlow, nil
	})
}

// TestAsyncPipelineOverHTTP is the control-plane e2e for the async event
// pipeline: /v1/status and /metrics must expose the pipeline fields, and a
// phase over an 8-slot ring feeding a 200µs/event backend must move the
// drop counter while the depth gauge settles back to zero behind the
// phase-end drain barrier.
func TestAsyncPipelineOverHTTP(t *testing.T) {
	ctlSlow.delay.Store(int64(200 * time.Microsecond))
	defer ctlSlow.delay.Store(0)
	ts, _, inst := newServer(t, capi.Quickstart(), "quickstart",
		capi.RunOptions{Backends: []string{"ctl-slow"}, Ranks: 2, Async: true, AsyncBuf: 8})
	t.Cleanup(func() { inst.Close() })

	var st ctl.StatusResponse
	getJSON(t, ts.URL+"/v1/status", &st)
	if !st.Async || st.DroppedAsync != 0 || st.PipelineDepth != 0 {
		t.Fatalf("fresh async status = %+v", st.InstanceStatus)
	}
	if st.AsyncBuf != 8 {
		t.Fatalf("asyncBuf = %d, want the effective 8-slot ring surfaced", st.AsyncBuf)
	}
	if st.PipelineHint != "" {
		t.Fatalf("fresh instance already hints %q; the hint must wait for drops", st.PipelineHint)
	}
	if got := scrapeMetric(t, ts.URL, "capi_pipeline_async"); got != 1 {
		t.Fatalf("capi_pipeline_async = %d, want 1", got)
	}
	if got := scrapeMetric(t, ts.URL, "capi_pipeline_dropped_total"); got != 0 {
		t.Fatalf("fresh drop counter = %d", got)
	}

	resp, body := postJSON(t, ts.URL+"/v1/run", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: %d %s", resp.StatusCode, body)
	}

	// The fields moved: back-pressure dropped pairs during the phase, and
	// the Run barrier left the rings empty before the summary was captured.
	getJSON(t, ts.URL+"/v1/status", &st)
	if st.DroppedAsync == 0 {
		t.Fatal("8-slot ring over a 200µs/event backend dropped nothing")
	}
	if st.PipelineDepth != 0 {
		t.Fatalf("pipeline depth %d after the phase, want 0", st.PipelineDepth)
	}
	// Shed load produces operator guidance: the hint names the next
	// power-of-two ring (8 → 16) so the restart advice is copy-pasteable.
	if !strings.Contains(st.PipelineHint, "-async-buf 16") {
		t.Fatalf("pipelineHint = %q, want next-power-of-two advice naming -async-buf 16", st.PipelineHint)
	}
	if got := scrapeMetric(t, ts.URL, "capi_pipeline_dropped_total"); int64(got) != st.DroppedAsync {
		t.Fatalf("metrics dropped = %d, status says %d", got, st.DroppedAsync)
	}
	if got := scrapeMetric(t, ts.URL, "capi_pipeline_depth"); got != 0 {
		t.Fatalf("depth gauge = %d at quiescence", got)
	}
	// The synchronous path advertises itself too: a plain instance reports
	// async 0 so dashboards can tell the modes apart.
	ts2, _, _ := newServer(t, capi.Quickstart(), "quickstart",
		capi.RunOptions{Backend: capi.BackendTALP, Ranks: 2})
	if got := scrapeMetric(t, ts2.URL, "capi_pipeline_async"); got != 0 {
		t.Fatalf("inline instance reports capi_pipeline_async = %d", got)
	}
}

// scrapeMetric reads one integer-valued metric from /metrics.
func scrapeMetric(t *testing.T, base, name string) int {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw := new(bytes.Buffer)
	raw.ReadFrom(resp.Body) //nolint:errcheck
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\d+)$`)
	m := re.FindSubmatch(raw.Bytes())
	if m == nil {
		t.Fatalf("%s missing from metrics:\n%s", name, raw.String())
	}
	n, err := strconv.Atoi(string(m[1]))
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// subscribeSSE opens /v1/events and feeds parsed events into a channel.
// It waits until the hub has registered the client so no event can be
// published into the gap between subscribe and first read.
func subscribeSSE(t *testing.T, ts *httptest.Server) chan [2]string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/events")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	events := make(chan [2]string, 16)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		var name, data string
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				name = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				data = strings.TrimPrefix(line, "data: ")
			case line == "" && name != "":
				events <- [2]string{name, data}
				name, data = "", ""
			}
		}
	}()
	for i := 0; i < 500; i++ {
		if scrapeMetric(t, ts.URL, "capi_sse_clients") == 1 {
			return events
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("SSE client never registered")
	return nil
}

// TestTTLSelectOverHTTP is the control-plane e2e for ephemeral probes: a
// POST /v1/select with a TTL applies the override, /v1/status counts down
// the pending revert, the expiry arrives as an SSE "expired" event (after
// the override's own "reconfigure"), the selection reverts to the
// pre-override base, and the capi_ttl_* series advance.
func TestTTLSelectOverHTTP(t *testing.T) {
	ts, _, inst := newServer(t, capi.Quickstart(), "quickstart",
		capi.RunOptions{Backend: capi.BackendTALP, Ranks: 2})
	wideActive := inst.ActiveFunctions()
	events := subscribeSSE(t, ts)

	resp, body := postJSON(t, ts.URL+"/v1/select", ctl.SelectRequest{Spec: narrowSpec, TTL: "250ms"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ttl'd select: %d %s", resp.StatusCode, body)
	}
	var selResp ctl.SelectResponse
	if err := json.Unmarshal(body, &selResp); err != nil {
		t.Fatal(err)
	}
	if selResp.TTLSeconds != 0.25 {
		t.Fatalf("ttlSeconds = %v, want 0.25", selResp.TTLSeconds)
	}
	var st ctl.StatusResponse
	getJSON(t, ts.URL+"/v1/status", &st)
	if !st.TTL.SelectPending || st.TTL.Scheduled != 1 {
		t.Fatalf("status after ttl'd select: %+v", st.TTL)
	}
	if st.ActiveFunctions >= wideActive {
		t.Fatalf("override not applied: %d active, had %d", st.ActiveFunctions, wideActive)
	}
	if got := scrapeMetric(t, ts.URL, `capi_ttl_pending{kind="select"}`); got != 1 {
		t.Fatalf("capi_ttl_pending{kind=\"select\"} = %d, want 1", got)
	}

	// The override's own reconfigure, then the expiry's revert.
	for _, want := range []string{"reconfigure", "expired"} {
		select {
		case ev := <-events:
			if ev[0] != want {
				t.Fatalf("event %q, want %q (data %s)", ev[0], want, ev[1])
			}
			if want == "expired" {
				var e capi.TTLExpiry
				if err := json.Unmarshal([]byte(ev[1]), &e); err != nil {
					t.Fatalf("%v in %s", err, ev[1])
				}
				if e.Kind != "select" || e.Report == nil {
					t.Fatalf("expired event = %+v", e)
				}
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("timed out waiting for %q", want)
		}
	}

	getJSON(t, ts.URL+"/v1/status", &st)
	if st.ActiveFunctions != wideActive {
		t.Fatalf("reverted to %d active functions, want %d", st.ActiveFunctions, wideActive)
	}
	if st.TTL.SelectPending || st.TTL.Expired != 1 {
		t.Fatalf("status after expiry: %+v", st.TTL)
	}
	if got := scrapeMetric(t, ts.URL, "capi_ttl_expired_total"); got != 1 {
		t.Fatalf("capi_ttl_expired_total = %d, want 1", got)
	}
	if got := scrapeMetric(t, ts.URL, `capi_ttl_pending{kind="select"}`); got != 0 {
		t.Fatalf("capi_ttl_pending{kind=\"select\"} = %d, want 0", got)
	}
}

// TestTTLRequestValidation: TTL strings the server cannot honor are 400s
// that name the ttl field and leave no revert pending, and an explicit
// select cancels a pending revert (counted, visible in /v1/status).
func TestTTLRequestValidation(t *testing.T) {
	ts, _, inst := newServer(t, capi.Quickstart(), "quickstart",
		capi.RunOptions{Backend: capi.BackendTALP, Ranks: 2})
	for _, bad := range []ctl.SelectRequest{
		{Spec: narrowSpec, TTL: "soon"},           // unparsable
		{Spec: narrowSpec, TTL: "-3s"},            // non-positive
		{Backends: []string{"extrae"}, TTL: "1s"}, // swap alone cannot expire
	} {
		resp, body := postJSON(t, ts.URL+"/v1/select", bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%+v: %d %s", bad, resp.StatusCode, body)
		}
		if got := errorField(t, body); got != "ttl" {
			t.Fatalf("%+v: 400 names field %q, want \"ttl\" (body %s)", bad, got, body)
		}
	}
	resp, body := postJSON(t, ts.URL+"/v1/sampling", ctl.SamplingRequest{Stride: 4, TTL: "nope"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad sampling ttl: %d %s", resp.StatusCode, body)
	}
	if got := errorField(t, body); got != "ttl" {
		t.Fatalf("bad sampling ttl names field %q (body %s)", got, body)
	}
	var st ctl.StatusResponse
	getJSON(t, ts.URL+"/v1/status", &st)
	if st.TTL.SelectPending || st.TTL.SamplingPending || st.TTL.Scheduled != 0 {
		t.Fatalf("rejected TTLs left state behind: %+v", st.TTL)
	}

	// A pending revert is canceled by an explicit select, not delivered.
	resp, body = postJSON(t, ts.URL+"/v1/select", ctl.SelectRequest{Spec: narrowSpec, TTL: "1h"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ttl'd select: %d %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.URL+"/v1/select", ctl.SelectRequest{Spec: wideSpec})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explicit select: %d %s", resp.StatusCode, body)
	}
	getJSON(t, ts.URL+"/v1/status", &st)
	if st.TTL.SelectPending || st.TTL.Canceled != 1 {
		t.Fatalf("explicit select did not cancel the revert: %+v", st.TTL)
	}
	if got := scrapeMetric(t, ts.URL, "capi_ttl_canceled_total"); got != 1 {
		t.Fatalf("capi_ttl_canceled_total = %d, want 1", got)
	}
	_ = inst
}
