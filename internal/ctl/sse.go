package ctl

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
)

// event is one server-sent event: a named JSON payload with a monotonic id.
type event struct {
	id   int64
	name string
	data []byte
}

// hub fans reconfigure/run notifications out to the connected SSE clients.
// Publishing never blocks: a subscriber that cannot keep up loses events
// (its channel is bounded), which is the right trade for a control plane —
// the authoritative state is always one GET /v1/status away.
type hub struct {
	mu     sync.Mutex
	next   int64                   //capi:guardedby mu
	closed bool                    //capi:guardedby mu
	subs   map[chan event]struct{} //capi:guardedby mu
}

func newHub() *hub {
	return &hub{subs: map[chan event]struct{}{}}
}

func (h *hub) subscribe() chan event {
	ch := make(chan event, 32)
	h.mu.Lock()
	if h.closed {
		close(ch) // the subscriber's receive fails immediately
	} else {
		h.subs[ch] = struct{}{}
	}
	h.mu.Unlock()
	return ch
}

// shutdown disconnects every subscriber and refuses new ones, so SSE
// handlers return and http.Server.Shutdown can drain. Wire it up with
// srv.RegisterOnShutdown(ctlServer.Shutdown): Shutdown does not cancel
// in-flight request contexts, so without this an open `curl -N /v1/events`
// would block graceful shutdown until its timeout.
func (h *hub) shutdown() {
	h.mu.Lock()
	h.closed = true
	for ch := range h.subs {
		close(ch)
		delete(h.subs, ch)
	}
	h.mu.Unlock()
}

func (h *hub) unsubscribe(ch chan event) {
	h.mu.Lock()
	delete(h.subs, ch)
	h.mu.Unlock()
}

func (h *hub) clients() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// publish marshals v and delivers it to every subscriber without blocking.
func (h *hub) publish(name string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	h.mu.Lock()
	h.next++
	ev := event{id: h.next, name: name, data: data}
	for ch := range h.subs {
		select {
		case ch <- ev:
		default: // slow client: drop rather than stall the control plane
		}
	}
	h.mu.Unlock()
}

// handleEvents streams hub events as text/event-stream. Every live
// re-selection applied through POST /v1/select arrives as one "reconfigure"
// event carrying the ReconfigReport; completed phases arrive as "run"
// events carrying the RunSummary.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	ch := s.hub.subscribe()
	defer s.hub.unsubscribe(ch)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, ": capi control plane, app %q\n\n", s.app)
	fl.Flush()

	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-ch:
			if !ok {
				return // hub shut down
			}
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.id, ev.name, ev.data); err != nil {
				return
			}
			fl.Flush()
		}
	}
}
