// Package ctl is the HTTP/JSON control plane over a live capi.Instance: the
// paper's runtime-adaptable selection, drivable *remotely*. In-process the
// Fig. 1 loop iterates Select → Reconfigure → Run; ctl lifts the same loop
// onto a long-lived service so a deployed run can be re-selected online —
// the way adaptive-monitoring systems tune deployed web applications
// without restarts (Mertz & Nunes, arXiv:2305.01039) and reactive
// components are instrumented while they run (Aceto et al.,
// arXiv:2406.19904).
//
// Endpoints:
//
//	GET  /v1/status     instance snapshot (active funcs, reconfigs, drops…)
//	GET  /v1/selection  currently selected function names
//	POST /v1/select     spec-DSL source, builtin name or include list →
//	                    compiled via Session.Select, applied live via
//	                    Instance.Reconfigure; returns the ReconfigReport
//	                    (with per-backend synthetic-exit counts). A
//	                    "backends" list swaps the measurement-backend set
//	                    of the live run (registry-resolved), with or
//	                    without an accompanying re-selection. An optional
//	                    "ttl" duration makes the selection ephemeral: it
//	                    auto-reverts to the pre-override snapshot, as a
//	                    normal Reconfigure + SSE "expired" event, unless
//	                    a newer explicit select lands first.
//	POST /v1/run        execute the next phase ({"wait":false} → async)
//	GET  /v1/report     unified report envelope: every attached backend's
//	                    report, keyed by backend name (kind + JSON body),
//	                    plus the sampler's counters when sampling is on
//	POST /v1/adapt      retune the overhead-budget controller live
//	POST /v1/sampling   install/replace the sampling & suppression table
//	                    (1-in-N stride, min-duration, redundancy collapse)
//	                    on the live hot path; 400 leaves state untouched;
//	                    an optional "ttl" auto-reverts to the previous table
//	GET  /v1/events     SSE stream: "reconfigure" per re-selection, "run",
//	                    "backends", "sampling", "expired" (a TTL revert
//	                    delivered), "breaker" (a backend's panic-barrier
//	                    circuit breaker tripped)
//	GET  /v1/healthz    liveness probe (no instance lock — answers even
//	                    mid-reconfigure; what a fleet coordinator polls)
//	GET  /metrics       Prometheus text exposition
//
// Error bodies are {"error": ..., "field": ...}: a 400 names the request
// field it rejects and implies nothing was applied.
//
// The server relies on capi.Instance being safe for concurrent control
// calls against an executing phase: re-selections land mid-run and report
// scrapes snapshot live measurement state.
package ctl

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	capi "capi"
	"capi/internal/dyncapi"
	"capi/internal/experiments"
	"capi/internal/ic"
	"capi/internal/vtime"
)

// maxBodyBytes bounds request bodies (spec sources are small).
const maxBodyBytes = 1 << 20

// Server serves one live instance. Create it with New and mount it on any
// http.Server (it implements http.Handler).
type Server struct {
	session *capi.Session
	inst    *capi.Instance
	app     string
	started time.Time

	mux *http.ServeMux
	hub *hub

	// httpSelects counts re-selections applied through POST /v1/select
	// (the instance's Reconfigs counter also includes controller decisions
	// and in-process callers).
	httpSelects atomic.Int64

	// inFlight guards POST /v1/run: one HTTP-initiated phase at a time.
	inFlight atomic.Bool

	mu      sync.Mutex
	lastRun *RunSummary //capi:guardedby mu
	lastErr string      //capi:guardedby mu
}

// New builds a control-plane server over a started instance. app names the
// workload in /v1/status and in ICs compiled from include lists.
func New(session *capi.Session, inst *capi.Instance, app string) *Server {
	s := &Server{
		session: session,
		inst:    inst,
		app:     app,
		started: time.Now(),
		mux:     http.NewServeMux(),
		hub:     newHub(),
	}
	s.mux.HandleFunc("GET /v1/status", s.handleStatus)
	s.mux.HandleFunc("GET /v1/selection", s.handleSelection)
	s.mux.HandleFunc("POST /v1/select", s.handleSelect)
	s.mux.HandleFunc("POST /v1/run", s.handleRun)
	s.mux.HandleFunc("GET /v1/report", s.handleReport)
	s.mux.HandleFunc("POST /v1/adapt", s.handleAdapt)
	s.mux.HandleFunc("POST /v1/sampling", s.handleSampling)
	s.mux.HandleFunc("GET /v1/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /{$}", s.handleIndex)
	// TTL expiries and breaker trips originate inside the instance (timer
	// goroutine / trip goroutine), not in a handler; surface them on the
	// SSE stream so remote observers see the revert or detach the moment
	// it happens.
	inst.SetTTLNotify(func(e capi.TTLExpiry) { s.hub.publish("expired", e) })
	inst.SetBreakerNotify(func(e capi.BreakerEvent) { s.hub.publish("breaker", e) })
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Shutdown disconnects the SSE subscribers so their handlers return.
// Register it with http.Server.RegisterOnShutdown: graceful shutdown waits
// for in-flight handlers but never cancels their request contexts, so an
// open /v1/events stream would otherwise hold Shutdown until its timeout.
func (s *Server) Shutdown() { s.hub.shutdown() }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// writeFieldErr is writeErr with the offending request field named in the
// body — every 400 a client can fix by editing one field uses it.
func writeFieldErr(w http.ResponseWriter, code int, field, format string, args ...any) {
	writeJSON(w, code, map[string]string{
		"error": fmt.Sprintf(format, args...),
		"field": field,
	})
}

// HealthzResponse is the GET /v1/healthz document: the liveness probe the
// fleet coordinator hits. It deliberately reads nothing from the instance —
// no instance lock, no runtime snapshot — so it answers even while a phase
// executes and a reconfigure holds the instance mutex.
type HealthzResponse struct {
	OK            bool    `json:"ok"`
	App           string  `json:"app"`
	UptimeSeconds float64 `json:"uptimeSeconds"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthzResponse{
		OK:            true,
		App:           s.app,
		UptimeSeconds: time.Since(s.started).Seconds(),
	})
}

// StatusResponse is the GET /v1/status document.
type StatusResponse struct {
	App string `json:"app"`
	capi.InstanceStatus
	HTTPSelects   int64   `json:"httpSelects"`
	UptimeSeconds float64 `json:"uptimeSeconds"`
	// PipelineHint appears when the async pipeline has shed load
	// (droppedAsync > 0): ring-sizing guidance naming the next
	// power-of-two -async-buf. The rings cannot grow on a live run — the
	// single-writer contract pins their memory — so the hint is restart
	// advice, not a knob.
	PipelineHint string `json:"pipelineHint,omitempty"`
	// LastRun summarizes the most recently completed phase. It lags the
	// Runs counter by one instant: the instance counts the phase before
	// the server records the summary, so a poller that needs the summary
	// should wait for LastRun.Phase == Runs (or LastRun non-nil), not for
	// Runs alone.
	LastRun   *RunSummary `json:"lastRun,omitempty"`
	LastError string      `json:"lastError,omitempty"`
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	resp := StatusResponse{
		App:            s.app,
		InstanceStatus: s.inst.Status(),
		HTTPSelects:    s.httpSelects.Load(),
		UptimeSeconds:  time.Since(s.started).Seconds(),
	}
	if resp.Async && resp.DroppedAsync > 0 && resp.AsyncBuf > 0 {
		// AsyncBuf is already a power of two (the pipeline rounds up), so
		// the next rung is exactly one doubling.
		resp.PipelineHint = fmt.Sprintf(
			"async back-pressure dropped %d enter/exit pairs with -async-buf %d; restart with -async-buf %d (next power of two)",
			resp.DroppedAsync, resp.AsyncBuf, resp.AsyncBuf*2)
	}
	s.mu.Lock()
	resp.LastRun = s.lastRun
	resp.LastError = s.lastErr
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

// SelectionResponse is the GET /v1/selection document.
type SelectionResponse struct {
	Count     int      `json:"count"`
	Functions []string `json:"functions"`
}

func (s *Server) handleSelection(w http.ResponseWriter, r *http.Request) {
	names := s.inst.ActiveFunctionNames()
	writeJSON(w, http.StatusOK, SelectionResponse{Count: len(names), Functions: names})
}

// SelectRequest is the POST /v1/select body. At most one selection source
// may be set; a non-JSON body is treated as raw spec-DSL source. Include /
// IncludeIDs may be combined (one IC), mirroring ic.Config. Backends may
// accompany any selection source — or stand alone — to swap the
// measurement-backend set of the live instance before the re-selection.
type SelectRequest struct {
	// Spec is CaPI spec-DSL source, compiled via Session.Select.
	Spec string `json:"spec,omitempty"`
	// Builtin names a built-in specification ("mpi", "mpi coarse",
	// "kernels", "kernels coarse").
	Builtin string `json:"builtin,omitempty"`
	// Include lists function names to instrument directly (no spec
	// evaluation); IncludeIDs adds packed XRay IDs.
	Include    []string `json:"include,omitempty"`
	IncludeIDs []int32  `json:"includeIDs,omitempty"`
	// Backends swaps the measurement-backend set by registry name
	// ("talp", "extrae", …): detaching backends close their open state
	// with synthetic exits, the sleds and the selection stay untouched.
	// Unknown names are rejected with the registered list.
	Backends []string `json:"backends,omitempty"`
	// TTL makes the selection ephemeral: a Go duration string ("2s",
	// "1m30s") after which the instance auto-reverts to the pre-override
	// selection (delivered as a normal Reconfigure, visible on the SSE
	// stream as an "expired" event). A newer explicit select cancels the
	// pending revert; a second TTL'd select keeps the original base and
	// moves the deadline. Requires a selection source in the same request.
	TTL string `json:"ttl,omitempty"`
}

// SelectionSummary carries the Table I statistics of a compiled selection.
type SelectionSummary struct {
	Pre      int     `json:"pre"`
	Selected int     `json:"selected"`
	Added    int     `json:"added"`
	Seconds  float64 `json:"seconds"`
}

// SelectResponse is the POST /v1/select result: the live re-selection's
// delta report (with per-backend synthetic-exit counts) plus, when a spec
// was compiled, the selection statistics, and — when the request swapped
// the backend set — the swap report. TTLSeconds echoes the accepted TTL
// for an ephemeral selection.
type SelectResponse struct {
	Report      capi.ReconfigReport     `json:"report"`
	Active      int                     `json:"active"`
	Selection   *SelectionSummary       `json:"selection,omitempty"`
	BackendSwap *capi.BackendSwapReport `json:"backendSwap,omitempty"`
	Backends    []string                `json:"backends,omitempty"`
	TTLSeconds  float64                 `json:"ttlSeconds,omitempty"`
}

func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	var req SelectRequest
	ctype, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
	if ctype == "application/json" {
		if err := json.Unmarshal(body, &req); err != nil {
			writeFieldErr(w, http.StatusBadRequest, "body", "decoding request: %v", err)
			return
		}
	} else {
		// Raw body = spec-DSL source (curl --data-binary @my.capi).
		req.Spec = string(body)
	}
	hasSelection := strings.TrimSpace(req.Spec) != "" || req.Builtin != "" ||
		len(req.Include) > 0 || len(req.IncludeIDs) > 0
	if !hasSelection && len(req.Backends) == 0 {
		writeErr(w, http.StatusBadRequest, "empty selection: provide spec source, a builtin name, an include list or a backends swap")
		return
	}
	// Parse the TTL before touching the instance: an unparsable (or
	// selection-less) TTL is a 400 that must leave everything untouched.
	var ttl time.Duration
	if req.TTL != "" {
		ttl, err = time.ParseDuration(req.TTL)
		if err != nil {
			writeFieldErr(w, http.StatusBadRequest, "ttl", "parsing ttl: %v", err)
			return
		}
		if ttl <= 0 {
			writeFieldErr(w, http.StatusBadRequest, "ttl", "ttl must be positive, got %q", req.TTL)
			return
		}
		if !hasSelection {
			writeFieldErr(w, http.StatusBadRequest, "ttl", "ttl requires a selection to revert from (a backends swap alone cannot expire)")
			return
		}
	}
	if !s.inst.Status().Instrumented {
		writeErr(w, http.StatusConflict, "instance is not instrumented")
		return
	}

	// Compile and validate the selection *before* touching the instance: a
	// 400 (bad spec, typo'd include, unknown backend) must imply nothing
	// was applied — a backend swap that preceded a failed compile would
	// leave the instance mutated behind an error response.
	var sel *capi.Selection
	var summary *SelectionSummary
	if hasSelection {
		switch {
		case strings.TrimSpace(req.Spec) != "" || req.Builtin != "":
			src := req.Spec
			specField := "spec"
			if strings.TrimSpace(src) == "" {
				specField = "builtin"
				src, err = experiments.SpecSource(req.Builtin)
				if err != nil {
					writeFieldErr(w, http.StatusBadRequest, "builtin", "builtin %q: %v", req.Builtin, err)
					return
				}
			}
			sel, err = s.session.Select(src)
			if err != nil {
				// The compile error (lexer/parser/selector) goes back verbatim
				// so the remote user can fix the spec.
				writeFieldErr(w, http.StatusBadRequest, specField, "compiling spec: %v", err)
				return
			}
			summary = &SelectionSummary{Pre: sel.Pre, Selected: sel.Selected, Added: sel.Added, Seconds: sel.Seconds}
		default:
			// A typo'd name would resolve to nothing and the reconfigure would
			// silently unpatch it — reject unknown names instead, like the spec
			// path rejects a spec that does not compile.
			if unknown := s.inst.UnknownFunctionNames(req.Include); len(unknown) > 0 {
				writeFieldErr(w, http.StatusBadRequest, "include", "unknown function name(s): %s", strings.Join(unknown, ", "))
				return
			}
			cfg := ic.New(s.app, "http", req.Include).WithIncludeIDs(req.IncludeIDs)
			sel = &capi.Selection{IC: cfg, Selected: cfg.Len()}
		}
	}

	// The backend swap rides along with (or without) the re-selection: the
	// set is exchanged before the reconfigure so the new backends observe
	// the new selection's events from the start.
	var swap *capi.BackendSwapReport
	if len(req.Backends) > 0 {
		rep, err := s.inst.SetBackends(req.Backends)
		if err != nil {
			writeFieldErr(w, http.StatusBadRequest, "backends", "swapping backends: %v", err)
			return
		}
		swap = &rep
		s.hub.publish("backends", rep)
	}
	if !hasSelection {
		writeJSON(w, http.StatusOK, SelectResponse{
			Active:      s.inst.ActiveFunctions(),
			BackendSwap: swap,
			Backends:    s.inst.Backends(),
		})
		return
	}

	var rep capi.ReconfigReport
	if ttl > 0 {
		rep, err = s.inst.ReconfigureTTL(sel, ttl)
	} else {
		rep, err = s.inst.Reconfigure(sel)
	}
	if errors.Is(err, capi.ErrNoTTLBase) {
		writeFieldErr(w, http.StatusConflict, "ttl", "%v", err)
		return
	}
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "reconfigure: %v", err)
		return
	}
	s.httpSelects.Add(1)
	s.hub.publish("reconfigure", rep)
	writeJSON(w, http.StatusOK, SelectResponse{
		Report:      rep,
		Active:      rep.Active,
		Selection:   summary,
		BackendSwap: swap,
		Backends:    s.inst.Backends(),
		TTLSeconds:  ttl.Seconds(),
	})
}

// RunRequest is the POST /v1/run body (optional). Wait=false returns 202
// immediately and executes the phase in the background; its completion is
// observable via /v1/status (lastRun) and the SSE "run" event.
type RunRequest struct {
	Wait *bool `json:"wait,omitempty"`
}

// RunSummary is the scalar slice of a capi.RunResult — the measurement
// reports stay on GET /v1/report, where they can also be scraped mid-phase.
type RunSummary struct {
	Phase        int      `json:"phase"`
	InitSeconds  float64  `json:"initSeconds"`
	TotalSeconds float64  `json:"totalSeconds"`
	Events       int64    `json:"events"`
	Patched      int      `json:"patched"`
	ActiveFuncs  int      `json:"activeFuncs"`
	Reconfigs    int      `json:"reconfigs"`
	WallSeconds  float64  `json:"wallSeconds"`
	DroppedFuncs []string `json:"droppedFuncs,omitempty"`
}

func summarize(res *capi.RunResult, phase int) *RunSummary {
	return &RunSummary{
		Phase:        phase,
		InitSeconds:  res.InitSeconds,
		TotalSeconds: res.TotalSeconds,
		Events:       res.Events,
		Patched:      res.Patched,
		ActiveFuncs:  res.ActiveFuncs,
		Reconfigs:    res.Reconfigs,
		WallSeconds:  res.WallSeconds,
		DroppedFuncs: res.DroppedFuncs,
	}
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			writeErr(w, http.StatusBadRequest, "decoding request: %v", err)
			return
		}
	}
	if !s.inFlight.CompareAndSwap(false, true) {
		writeErr(w, http.StatusConflict, "a phase is already executing")
		return
	}
	if req.Wait == nil || *req.Wait {
		defer s.inFlight.Store(false)
		sum, err := s.runPhase()
		if err != nil {
			writeErr(w, http.StatusInternalServerError, "run: %v", err)
			return
		}
		writeJSON(w, http.StatusOK, sum)
		return
	}
	go func() {
		defer s.inFlight.Store(false)
		s.runPhase() //nolint:errcheck // recorded in lastErr
	}()
	writeJSON(w, http.StatusAccepted, map[string]any{"started": true})
}

// runPhase executes one phase and records its outcome for /v1/status.
func (s *Server) runPhase() (*RunSummary, error) {
	res, err := s.inst.Run()
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		s.lastErr = err.Error()
		return nil, err
	}
	s.lastErr = ""
	s.lastRun = summarize(res, s.inst.Runs())
	s.hub.publish("run", s.lastRun)
	return s.lastRun, nil
}

// ReportEntry is one backend's report inside the GET /v1/report envelope:
// the self-describing kind tag plus the report document itself.
type ReportEntry struct {
	Kind   string          `json:"kind"`
	Report json.RawMessage `json:"report"`
}

// ReportResponse is the GET /v1/report envelope: one entry per attached
// measurement backend that has produced a report, keyed by backend name.
// Backend echoes the first attached backend for pre-envelope clients.
// Sampling carries the sampler's policies and conservation counters when a
// sampling table is (or was) installed — every attached backend sees the
// same sampled stream, so the counters apply to each entry alike.
type ReportResponse struct {
	Backend  capi.Backend           `json:"backend"`
	Backends []string               `json:"backends"`
	Reports  map[string]ReportEntry `json:"reports"`
	Sampling *capi.SamplingSnapshot `json:"sampling,omitempty"`
	// Breaker carries the panic-barrier stats of every backend that ever
	// panicked; DetachedBackends lists the backends the circuit breaker
	// removed, DroppedPanicked the enters the barriers swallowed (part of
	// the conservation identity alongside Sampling's counters).
	Breaker          []capi.BreakerStatus `json:"breaker,omitempty"`
	DetachedBackends []string             `json:"detachedBackends,omitempty"`
	DroppedPanicked  int64                `json:"droppedPanicked,omitempty"`
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	resp := ReportResponse{
		Backend:  s.inst.Backend(),
		Backends: s.inst.Backends(),
		Reports:  map[string]ReportEntry{},
	}
	if snap := s.inst.Sampling(); snap.Configured || snap.Counters.Enters > 0 {
		resp.Sampling = &snap
	}
	st := s.inst.Status()
	resp.Breaker = st.Breaker
	resp.DetachedBackends = st.DetachedBackends
	resp.DroppedPanicked = st.DroppedPanicked
	for name, rep := range s.inst.Reports() {
		raw, err := rep.MarshalJSON()
		if err != nil {
			writeErr(w, http.StatusInternalServerError, "rendering %s report: %v", name, err)
			return
		}
		resp.Reports[name] = ReportEntry{Kind: rep.Kind(), Report: raw}
	}
	if len(resp.Reports) == 0 {
		writeErr(w, http.StatusNotFound, "no report yet (backends: %s)", strings.Join(resp.Backends, ", "))
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// AdaptRequest is the POST /v1/adapt body; zero fields keep their current
// value, MaxReconfigs < 0 lifts the bound. SLOTargetP99Ms > 0 switches the
// controller to tail-latency SLO mode ("p99 ≤ X ms with maximum coverage",
// driven by the middleware's per-endpoint request latencies); a negative
// value switches back to overhead-budget mode.
type AdaptRequest struct {
	Budget         float64 `json:"budget,omitempty"`
	EpochSeconds   float64 `json:"epochSeconds,omitempty"`
	PerEventNs     int64   `json:"perEventNs,omitempty"`
	MinMeanNs      int64   `json:"minMeanNs,omitempty"`
	MaxReconfigs   int     `json:"maxReconfigs,omitempty"`
	SLOTargetP99Ms float64 `json:"sloTargetP99Ms,omitempty"`
	SLOWindow      int     `json:"sloWindow,omitempty"`
	SLOMinSamples  int     `json:"sloMinSamples,omitempty"`
}

// AdaptResponse echoes the effective tuning after the retune.
type AdaptResponse struct {
	Budget         float64 `json:"budget"`
	EpochSeconds   float64 `json:"epochSeconds"`
	PerEventNs     int64   `json:"perEventNs"`
	MinMeanNs      int64   `json:"minMeanNs"`
	MaxReconfigs   int     `json:"maxReconfigs"`
	SLOTargetP99Ms float64 `json:"sloTargetP99Ms,omitempty"`
	SLOWindow      int     `json:"sloWindow,omitempty"`
	SLOMinSamples  int     `json:"sloMinSamples,omitempty"`
}

func (s *Server) handleAdapt(w http.ResponseWriter, r *http.Request) {
	var req AdaptRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	var sloNs int64
	switch {
	case req.SLOTargetP99Ms > 0:
		sloNs = int64(req.SLOTargetP99Ms * float64(vtime.Millisecond))
	case req.SLOTargetP99Ms < 0:
		sloNs = -1
	}
	got, err := s.inst.Retune(capi.AdaptOptions{
		Budget:         req.Budget,
		Epoch:          vtime.Seconds(req.EpochSeconds),
		PerEventNs:     req.PerEventNs,
		MinMeanNs:      req.MinMeanNs,
		MaxReconfigs:   req.MaxReconfigs,
		SLOTargetP99Ns: sloNs,
		SLOWindow:      req.SLOWindow,
		SLOMinSamples:  req.SLOMinSamples,
	})
	if err != nil {
		writeErr(w, http.StatusConflict, "%v", err)
		return
	}
	resp := AdaptResponse{
		Budget:       got.Budget,
		EpochSeconds: float64(got.Epoch) / float64(vtime.Second),
		PerEventNs:   got.PerEventNs,
		MinMeanNs:    got.MinMeanNs,
		MaxReconfigs: got.MaxReconfigs,
	}
	if got.SLOTargetP99Ns > 0 {
		resp.SLOTargetP99Ms = float64(got.SLOTargetP99Ns) / float64(vtime.Millisecond)
		resp.SLOWindow = got.SLOWindow
		resp.SLOMinSamples = got.SLOMinSamples
	}
	writeJSON(w, http.StatusOK, resp)
}

// SamplingRequest is the POST /v1/sampling body: the default-policy fields
// inline plus optional per-function overrides. The whole table is replaced
// atomically; an all-zero request clears every policy. Invalid values and
// unknown function names are rejected with 400 *before* anything is
// applied — a 400 implies the previous table is untouched.
type SamplingRequest struct {
	// Stride delivers 1 of every N enters per rank (<=1 = all).
	Stride int `json:"stride,omitempty"`
	// MinDurationNs suppresses pairs predicted shorter than this.
	MinDurationNs int64 `json:"minDurationNs,omitempty"`
	// CollapseRedundant collapses repeated identical short calls;
	// RedundantGapNs is the repeat window (0 = default).
	CollapseRedundant bool  `json:"collapseRedundant,omitempty"`
	RedundantGapNs    int64 `json:"redundantGapNs,omitempty"`
	// Functions overrides the default policy per function name.
	Functions map[string]capi.SamplingPolicy `json:"functions,omitempty"`
	// TTL makes the table ephemeral: a Go duration string after which the
	// previous table is restored (SSE "expired" event). A newer explicit
	// POST /v1/sampling cancels the pending revert.
	TTL string `json:"ttl,omitempty"`
}

// samplingField maps a dyncapi.PolicyError field to the SamplingRequest
// JSON field it arrived in (the runtime calls the per-function override
// map "funcs"; the HTTP API calls it "functions").
func samplingField(field string) string {
	if field == "funcs" {
		return "functions"
	}
	return field
}

func (s *Server) handleSampling(w http.ResponseWriter, r *http.Request) {
	var req SamplingRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeFieldErr(w, http.StatusBadRequest, "body", "decoding request: %v", err)
		return
	}
	var ttl time.Duration
	if req.TTL != "" {
		var err error
		ttl, err = time.ParseDuration(req.TTL)
		if err != nil {
			writeFieldErr(w, http.StatusBadRequest, "ttl", "parsing ttl: %v", err)
			return
		}
		if ttl <= 0 {
			writeFieldErr(w, http.StatusBadRequest, "ttl", "ttl must be positive, got %q", req.TTL)
			return
		}
	}
	if !s.inst.Status().Instrumented {
		writeErr(w, http.StatusConflict, "instance is not instrumented")
		return
	}
	cfg := capi.SamplingOptions{Funcs: req.Functions}
	def := capi.SamplingPolicy{
		Stride:            req.Stride,
		MinDurationNs:     req.MinDurationNs,
		CollapseRedundant: req.CollapseRedundant,
		RedundantGapNs:    req.RedundantGapNs,
	}
	if def != (capi.SamplingPolicy{}) {
		cfg.Default = &def
	}
	// SetSampling validates the whole config — policy values and function
	// names — before touching the table, so a 400 here means no mutation.
	// A validation failure names the offending field (dyncapi.PolicyError).
	var err error
	if ttl > 0 {
		err = s.inst.SetSamplingTTL(cfg, ttl)
	} else {
		err = s.inst.SetSampling(cfg)
	}
	if err != nil {
		var pe *dyncapi.PolicyError
		if errors.As(err, &pe) {
			writeFieldErr(w, http.StatusBadRequest, samplingField(pe.Field), "%v", err)
			return
		}
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	snap := s.inst.Sampling()
	s.hub.publish("sampling", snap)
	writeJSON(w, http.StatusOK, snap)
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"app": s.app,
		"endpoints": []string{
			"GET /v1/status", "GET /v1/selection", "POST /v1/select",
			"POST /v1/run", "GET /v1/report", "POST /v1/adapt",
			"POST /v1/sampling", "GET /v1/events", "GET /v1/healthz",
			"GET /metrics",
		},
	})
}

// handleMetrics renders the Prometheus text exposition format (0.0.4).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.inst.Status()
	running := 0
	if st.Running {
		running = 1
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder
	gauge := func(name, help string, val any) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, val)
	}
	counter := func(name, help string, val any) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %v\n", name, help, name, name, val)
	}
	gauge("capi_active_functions", "Current selection size.", st.ActiveFunctions)
	gauge("capi_patched_functions", "Functions patched at DynCaPI start-up.", st.Patched)
	gauge("capi_running", "1 while a phase is executing.", running)
	counter("capi_reconfigs_total", "Live re-selections applied (HTTP, in-process and controller).", st.Reconfigs)
	counter("capi_http_selects_total", "Re-selections applied through POST /v1/select.", s.httpSelects.Load())
	counter("capi_runs_total", "Completed phases.", st.Runs)
	counter("capi_events_total", "Instrumentation events dispatched across completed phases.", st.Events)
	fmt.Fprintf(&b, "# HELP capi_dropped_events_total Events dropped outside the active selection.\n# TYPE capi_dropped_events_total counter\n")
	fmt.Fprintf(&b, "capi_dropped_events_total{class=\"in_flight\"} %d\n", st.DroppedInFlight)
	fmt.Fprintf(&b, "capi_dropped_events_total{class=\"unpatched\"} %d\n", st.DroppedUnpatched)
	counter("capi_synthetic_exits_total", "Dangling enters closed by the backends on deselection.", st.SyntheticExits)
	// Async pipeline: the async gauge is static per instance, the depth
	// breathes with the consumer pool's lag, the drop counter only moves
	// when back-pressure rejects whole enter/exit pairs.
	asyncOn := 0
	if st.Async {
		asyncOn = 1
	}
	gauge("capi_pipeline_async", "1 when the asynchronous event pipeline is attached.", asyncOn)
	gauge("capi_pipeline_depth", "Events currently queued in the async pipeline's per-rank rings.", st.PipelineDepth)
	counter("capi_pipeline_dropped_total", "Enter/exit pairs rejected by async pipeline back-pressure (bounded rings).", st.DroppedAsync)
	if len(st.SyntheticExitsByBackend) > 0 {
		names := make([]string, 0, len(st.SyntheticExitsByBackend))
		for name := range st.SyntheticExitsByBackend {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintf(&b, "# HELP capi_backend_synthetic_exits_total Dangling enters closed, per measurement backend.\n# TYPE capi_backend_synthetic_exits_total counter\n")
		for _, name := range names {
			fmt.Fprintf(&b, "capi_backend_synthetic_exits_total{backend=%q} %d\n", name, st.SyntheticExitsByBackend[name])
		}
	}
	// Sampling: the default-stride gauge moves the moment a table is
	// POSTed (before any event flows), the counters as sampled phases run.
	defaultStride := 0
	if st.Sampling != nil && st.Sampling.Default != nil {
		defaultStride = st.Sampling.Default.Stride
	}
	gauge("capi_sampling_default_stride", "Default 1-in-N sampling stride (0 = unsampled).", defaultStride)
	if st.Sampling != nil {
		gauge("capi_sampling_func_policies", "Per-function sampling policy overrides installed.", st.Sampling.FuncPolicies)
		c := st.Sampling.Counters
		counter("capi_sampled_events_total", "Enters dropped by 1-in-N stride sampling.", c.SampledEvents)
		counter("capi_suppressed_pairs_total", "Enter/exit pairs dropped by min-duration suppression.", c.SuppressedPairs)
		counter("capi_suppressed_virtual_ns_total", "Virtual ns of min-duration-suppressed pairs (exact accounting).", c.SuppressedNs)
		counter("capi_collapsed_calls_total", "Repeated identical short calls collapsed by redundancy suppression.", c.CollapsedCalls)
		counter("capi_sampler_delivered_total", "Enters delivered through the sampler to the backend chain.", c.Delivered)
	}
	// Ephemeral probes: the pending gauges flip while a TTL'd override is
	// live, the counters record the scheduler's full history.
	ttlPending := func(pending bool) int {
		if pending {
			return 1
		}
		return 0
	}
	fmt.Fprintf(&b, "# HELP capi_ttl_pending 1 while a TTL'd override awaits its auto-revert, per kind.\n# TYPE capi_ttl_pending gauge\n")
	fmt.Fprintf(&b, "capi_ttl_pending{kind=\"select\"} %d\n", ttlPending(st.TTL.SelectPending))
	fmt.Fprintf(&b, "capi_ttl_pending{kind=\"sampling\"} %d\n", ttlPending(st.TTL.SamplingPending))
	counter("capi_ttl_scheduled_total", "TTL'd overrides accepted (select and sampling).", st.TTL.Scheduled)
	counter("capi_ttl_expired_total", "TTL auto-reverts delivered.", st.TTL.Expired)
	counter("capi_ttl_canceled_total", "Pending TTL reverts canceled by a newer explicit select/sampling call.", st.TTL.Canceled)
	// Panic barrier: totals always, the per-backend breakdown only for
	// backends that ever panicked (label cardinality stays bounded by the
	// attached set).
	counter("capi_dropped_panicked_total", "Enters swallowed by the per-backend panic barriers (panicking delivery or open breaker).", st.DroppedPanicked)
	gauge("capi_detached_backends", "Backends the circuit breaker removed from the live instance.", len(st.DetachedBackends))
	if len(st.Breaker) > 0 {
		fmt.Fprintf(&b, "# HELP capi_backend_panics_total Panics recovered in a backend's delivery paths.\n# TYPE capi_backend_panics_total counter\n")
		for _, bs := range st.Breaker {
			fmt.Fprintf(&b, "capi_backend_panics_total{backend=%q} %d\n", bs.Backend, bs.Panics)
		}
		fmt.Fprintf(&b, "# HELP capi_breaker_tripped 1 when the backend's circuit breaker is open.\n# TYPE capi_breaker_tripped gauge\n")
		for _, bs := range st.Breaker {
			tripped := 0
			if bs.Tripped {
				tripped = 1
			}
			fmt.Fprintf(&b, "capi_breaker_tripped{backend=%q} %d\n", bs.Backend, tripped)
		}
	}
	// Serving traffic: per-endpoint request counters and latency
	// histograms appear once the middleware registered endpoints; the SLO
	// series once the controller runs in tail-latency mode.
	if st.HTTP != nil {
		gauge("capi_http_workers", "Request contexts checked out by the HTTP middleware.", st.HTTP.Workers)
		fmt.Fprintf(&b, "# HELP capi_http_requests_total Requests observed per endpoint.\n# TYPE capi_http_requests_total counter\n")
		for _, ep := range st.HTTP.Endpoints {
			fmt.Fprintf(&b, "capi_http_requests_total{endpoint=%q} %d\n", ep.Endpoint, ep.Requests)
		}
		fmt.Fprintf(&b, "# HELP capi_http_request_latency_ms Request latency per endpoint.\n# TYPE capi_http_request_latency_ms histogram\n")
		for _, ep := range st.HTTP.Endpoints {
			for _, bk := range ep.Buckets {
				fmt.Fprintf(&b, "capi_http_request_latency_ms_bucket{endpoint=%q,le=%q} %d\n", ep.Endpoint, strconv.FormatFloat(bk.LeMs, 'g', -1, 64), bk.Count)
			}
			fmt.Fprintf(&b, "capi_http_request_latency_ms_bucket{endpoint=%q,le=\"+Inf\"} %d\n", ep.Endpoint, ep.Requests)
			fmt.Fprintf(&b, "capi_http_request_latency_ms_sum{endpoint=%q} %g\n", ep.Endpoint, ep.SumMs)
			fmt.Fprintf(&b, "capi_http_request_latency_ms_count{endpoint=%q} %d\n", ep.Endpoint, ep.Requests)
		}
		fmt.Fprintf(&b, "# HELP capi_http_endpoint_active_functions Instrumented functions still selected in the endpoint's call tree.\n# TYPE capi_http_endpoint_active_functions gauge\n")
		for _, ep := range st.HTTP.Endpoints {
			fmt.Fprintf(&b, "capi_http_endpoint_active_functions{endpoint=%q} %d\n", ep.Endpoint, ep.ActiveFunctions)
		}
		fmt.Fprintf(&b, "# HELP capi_http_endpoint_demoted_functions Selected functions running at a reduced sampling stride.\n# TYPE capi_http_endpoint_demoted_functions gauge\n")
		for _, ep := range st.HTTP.Endpoints {
			fmt.Fprintf(&b, "capi_http_endpoint_demoted_functions{endpoint=%q} %d\n", ep.Endpoint, ep.DemotedFunctions)
		}
	}
	if st.SLO != nil {
		gauge("capi_slo_target_p99_ms", "Tail-latency SLO target the controller narrows toward (0 = budget mode).", st.SLO.TargetP99Ms)
		fmt.Fprintf(&b, "# HELP capi_slo_met 1 when the endpoint's recent p99 meets the SLO target.\n# TYPE capi_slo_met gauge\n")
		for _, ep := range st.SLO.Endpoints {
			met := 0
			if ep.Met {
				met = 1
			}
			fmt.Fprintf(&b, "capi_slo_met{endpoint=%q} %d\n", ep.Endpoint, met)
		}
		fmt.Fprintf(&b, "# HELP capi_slo_p99_ms Endpoint p99 over the controller's recent-latency window.\n# TYPE capi_slo_p99_ms gauge\n")
		for _, ep := range st.SLO.Endpoints {
			fmt.Fprintf(&b, "capi_slo_p99_ms{endpoint=%q} %g\n", ep.Endpoint, ep.P99Ms)
		}
		fmt.Fprintf(&b, "# HELP capi_slo_ladder_steps Demote/deselect steps the controller currently holds for the endpoint.\n# TYPE capi_slo_ladder_steps gauge\n")
		for _, ep := range st.SLO.Endpoints {
			fmt.Fprintf(&b, "capi_slo_ladder_steps{endpoint=%q} %d\n", ep.Endpoint, ep.Steps)
		}
	}
	gauge("capi_attached_backends", "Measurement backends attached to the instance.", len(st.Backends))
	gauge("capi_init_virtual_seconds", "DynCaPI start-up time (T_init), virtual.", st.InitSeconds)
	counter("capi_reconfig_virtual_seconds_total", "Accumulated virtual re-patch cost of live re-selections.", st.ReconfigSeconds)
	gauge("capi_sse_clients", "Connected /v1/events subscribers.", s.hub.clients())
	io.WriteString(w, b.String()) //nolint:errcheck // client gone
}
