package capi_test

import (
	"strings"
	"testing"

	capi "capi"
)

const quickSpec = `!import("mpi.capi")
excluded = join(inSystemHeader(%%), inlineSpecified(%%))
subtract(%mpi_comm, %excluded)
`

func newQuickSession(t *testing.T) *capi.Session {
	t.Helper()
	s, err := capi.NewSession(capi.Quickstart(), capi.SessionOptions{OptLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSessionValidation(t *testing.T) {
	if _, err := capi.NewSession(nil, capi.SessionOptions{}); err == nil {
		t.Fatal("nil program must fail")
	}
}

func TestSessionSelect(t *testing.T) {
	s := newQuickSession(t)
	sel, err := s.Select(quickSpec)
	if err != nil {
		t.Fatal(err)
	}
	if sel.IC.Len() == 0 {
		t.Fatal("empty selection")
	}
	for _, want := range []string{"main", "exchange_halo", "compute_residual"} {
		if !sel.IC.Contains(want) {
			t.Fatalf("selection misses %s: %v", want, sel.IC.Include)
		}
	}
	if sel.IC.Contains("stencil_kernel") {
		t.Fatal("pure compute kernel must not be on the MPI selection")
	}
	if sel.Pre < sel.Selected {
		t.Fatalf("pre %d < selected %d", sel.Pre, sel.Selected)
	}
}

func TestSessionSelectBadSpec(t *testing.T) {
	s := newQuickSession(t)
	if _, err := s.Select(`bogus(%%`); err == nil {
		t.Fatal("syntax error must be reported")
	}
	if _, err := s.Select(`unknownSelector(%%)`); err == nil {
		t.Fatal("unknown selector must be reported")
	}
	if _, err := s.Select(""); err == nil {
		t.Fatal("empty spec must be reported")
	}
}

func TestSessionRunBackends(t *testing.T) {
	s := newQuickSession(t)
	sel, err := s.Select(quickSpec)
	if err != nil {
		t.Fatal(err)
	}
	van, err := s.RunVanilla(2)
	if err != nil {
		t.Fatal(err)
	}

	talpRes, err := s.Run(sel, capi.RunOptions{Backend: capi.BackendTALP, Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if talpRes.TALP == nil {
		t.Fatal("no TALP report")
	}
	if talpRes.TALP.Region("exchange_halo") == nil {
		t.Fatal("exchange_halo region not measured by TALP")
	}
	if talpRes.TotalSeconds <= van {
		t.Fatalf("instrumented run %v not above vanilla %v", talpRes.TotalSeconds, van)
	}

	spRes, err := s.Run(sel, capi.RunOptions{Backend: capi.BackendScoreP, Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if spRes.Profile == nil {
		t.Fatal("no Score-P profile")
	}
	if spRes.Profile.Region("compute_residual") == nil {
		t.Fatal("compute_residual not in profile")
	}
}

func TestSessionRunInactiveSledsNearVanilla(t *testing.T) {
	s := newQuickSession(t)
	van, err := s.RunVanilla(2)
	if err != nil {
		t.Fatal(err)
	}
	// nil selection + no PatchAll: sleds inserted but never patched.
	res, err := s.Run(nil, capi.RunOptions{Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Patched != 0 || res.Events != 0 {
		t.Fatalf("inactive run patched %d, events %d", res.Patched, res.Events)
	}
	delta := (res.TotalSeconds - van) / van
	if delta < 0 || delta > 0.01 {
		t.Fatalf("inactive sled overhead %.4f outside [0,1%%]", delta)
	}
}

func TestSessionRunPatchAll(t *testing.T) {
	s := newQuickSession(t)
	full, err := s.Run(nil, capi.RunOptions{Backend: capi.BackendTALP, Ranks: 2, PatchAll: true})
	if err != nil {
		t.Fatal(err)
	}
	sel, err := s.Select(quickSpec)
	if err != nil {
		t.Fatal(err)
	}
	filtered, err := s.Run(sel, capi.RunOptions{Backend: capi.BackendTALP, Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if full.Patched <= filtered.Patched {
		t.Fatalf("full patched %d <= filtered %d", full.Patched, filtered.Patched)
	}
	if full.TotalSeconds <= filtered.TotalSeconds {
		t.Fatalf("full run %v not above filtered %v", full.TotalSeconds, filtered.TotalSeconds)
	}
}

// TestRefinementLoop exercises the Fig. 1 adjust cycle: measure, find the
// most expensive region, exclude it by name, re-select and re-run without
// recompiling; the refined run must patch fewer functions and cost less.
func TestRefinementLoop(t *testing.T) {
	s := newQuickSession(t)
	sel1, err := s.Select(`excluded = join(inSystemHeader(%%), inlineSpecified(%%))
subtract(callPathTo(flops(">=", 10, %%)), %excluded)
`)
	if err != nil {
		t.Fatal(err)
	}
	run1, err := s.Run(sel1, capi.RunOptions{Backend: capi.BackendScoreP, Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	// "stencil_kernel produced too much overhead" — refine it away.
	if !sel1.IC.Contains("stencil_kernel") {
		t.Fatal("precondition: stencil_kernel selected")
	}
	sel2, err := s.Select(`excluded = join(inSystemHeader(%%), inlineSpecified(%%))
hot = byName("^stencil_kernel$", %%)
subtract(subtract(callPathTo(flops(">=", 10, %%)), %excluded), %hot)
`)
	if err != nil {
		t.Fatal(err)
	}
	if sel2.IC.Contains("stencil_kernel") {
		t.Fatal("refinement did not exclude stencil_kernel")
	}
	if sel2.IC.Len() >= sel1.IC.Len() {
		t.Fatalf("refined IC %d not smaller than %d", sel2.IC.Len(), sel1.IC.Len())
	}
	run2, err := s.Run(sel2, capi.RunOptions{Backend: capi.BackendScoreP, Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if run2.TotalSeconds >= run1.TotalSeconds {
		t.Fatalf("refined run %v not below %v", run2.TotalSeconds, run1.TotalSeconds)
	}
	// The dynamic turnaround must beat the static recompile by a wide
	// margin (§VII-A).
	if run2.InitSeconds >= s.RecompileSeconds() {
		t.Fatalf("patch init %v not below recompile %v", run2.InitSeconds, s.RecompileSeconds())
	}
}

func TestSessionUnknownBackend(t *testing.T) {
	s := newQuickSession(t)
	sel, err := s.Select(quickSpec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(sel, capi.RunOptions{Backend: "vampir", Ranks: 2}); err == nil ||
		!strings.Contains(err.Error(), "backend") {
		t.Fatalf("unknown backend error missing, got %v", err)
	}
}

// TestAttachStaticIDs exercises the §VI-B(a) extension through the facade:
// a hidden DSO function can only be patched once static IDs are attached.
func TestAttachStaticIDs(t *testing.T) {
	s, err := capi.NewSession(capi.OpenFOAM(capi.OpenFOAMOptions{Scale: 0.02, Timesteps: 1, PCGIters: 2}),
		capi.SessionOptions{OptLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Select the hidden static initializers by name — unreachable for
	// name-based resolution.
	sel, err := s.Select(`byName("^_GLOBAL__sub_I_", %%)`)
	if err != nil {
		t.Fatal(err)
	}
	if sel.IC.Len() == 0 {
		t.Fatal("no static initializers selected")
	}
	plain, err := s.Run(sel, capi.RunOptions{Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Patched != 0 {
		t.Fatalf("hidden functions patched by name: %d", plain.Patched)
	}
	if err := s.AttachStaticIDs(sel); err != nil {
		t.Fatal(err)
	}
	withIDs, err := s.Run(sel, capi.RunOptions{Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if withIDs.Patched == 0 {
		t.Fatal("static IDs did not patch the hidden functions")
	}
	if withIDs.Events == 0 {
		t.Fatal("patched static initializers produced no events")
	}
}

func TestSessionCustomModules(t *testing.T) {
	s, err := capi.NewSession(capi.Quickstart(), capi.SessionOptions{
		OptLevel: 2,
		Modules: capi.MapModules{
			"site.capi": "site_excluded = inSystemHeader(%%)\n",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sel, err := s.Select(`!import("site.capi")
subtract(%%, %site_excluded)
`)
	if err != nil {
		t.Fatal(err)
	}
	if sel.IC.Len() == 0 {
		t.Fatal("empty selection via custom module")
	}
}

// TestLiveInstanceReconfigure exercises the Fig. 1 loop without leaving the
// process: one instance, refined in place between execution phases.
func TestLiveInstanceReconfigure(t *testing.T) {
	s := newQuickSession(t)
	sel1, err := s.Select(quickSpec)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := s.Start(sel1, capi.RunOptions{Backend: capi.BackendTALP, Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	res1, err := inst.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res1.Events == 0 || res1.InitSeconds <= 0 {
		t.Fatalf("phase 1: events %d, init %v", res1.Events, res1.InitSeconds)
	}
	if res1.TALP == nil {
		t.Fatal("phase 1: no TALP report")
	}

	// Narrow the selection live: coarse regions only.
	sel2, err := s.Select(`!import("mpi.capi")
excluded = join(inSystemHeader(%%), inlineSpecified(%%))
coarse(subtract(%mpi_comm, %excluded))
`)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := inst.Reconfigure(sel2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unpatched == 0 {
		t.Fatalf("narrowing unpatched nothing: %+v", rep)
	}
	if rep.Batch.BatchFuncs != int64(rep.Patched+rep.Unpatched) {
		t.Fatalf("batch touched %d funcs, delta is %d", rep.Batch.BatchFuncs, rep.Patched+rep.Unpatched)
	}
	res2, err := inst.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Events >= res1.Events {
		t.Fatalf("narrowed phase produced %d events >= %d", res2.Events, res1.Events)
	}
	// The second phase paid only the re-patch, not a full re-init.
	if res2.InitSeconds >= res1.InitSeconds {
		t.Fatalf("live turnaround %v not below T_init %v", res2.InitSeconds, res1.InitSeconds)
	}
	if res2.TALP == nil {
		t.Fatal("phase 2: no TALP report")
	}
	if inst.Reconfigs() != 1 {
		t.Fatalf("reconfigs = %d", inst.Reconfigs())
	}
	if got := inst.ActiveFunctions(); got != res2.ActiveFuncs || got == 0 {
		t.Fatalf("active functions = %d (result says %d)", got, res2.ActiveFuncs)
	}
}

// TestRunWithAdaptController exercises the public Adapt wiring: a tight
// budget must trigger live narrowing during a plain Session.Run. The
// demote ladder is disabled here to pin the direct deselect path;
// TestAdaptDemoteLadderEndToEnd covers the default ladder.
func TestRunWithAdaptController(t *testing.T) {
	s := newQuickSession(t)
	res, err := s.Run(nil, capi.RunOptions{
		Ranks:    2,
		PatchAll: true,
		Adapt:    &capi.AdaptOptions{Budget: 0.0001, DemoteStride: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reconfigs == 0 {
		t.Fatal("controller never narrowed under a tight budget")
	}
	if len(res.DroppedFuncs) == 0 || len(res.AdaptEpochs) == 0 {
		t.Fatalf("adaptation not reported: dropped %v, epochs %d", res.DroppedFuncs, len(res.AdaptEpochs))
	}
	if res.ActiveFuncs >= res.Patched {
		t.Fatalf("active %d not below initially patched %d", res.ActiveFuncs, res.Patched)
	}
	reconfigured := false
	for _, ep := range res.AdaptEpochs {
		if ep.Reconfigured {
			reconfigured = true
			if ep.Report.Batch.BatchFuncs == 0 {
				t.Fatalf("reconfigured epoch did no batch work: %+v", ep.Report)
			}
		}
	}
	if !reconfigured {
		t.Fatal("no reconfigured epoch recorded")
	}
}

// TestAdaptControllerStaysArmedAcrossPhases is the regression for the
// controller going dormant after the first phase: a fresh world restarts
// the rank clocks at zero, so the epoch boundary must be re-armed.
func TestAdaptControllerStaysArmedAcrossPhases(t *testing.T) {
	s := newQuickSession(t)
	inst, err := s.Start(nil, capi.RunOptions{
		Ranks:    2,
		PatchAll: true,
		Adapt:    &capi.AdaptOptions{Budget: 0.0001},
	})
	if err != nil {
		t.Fatal(err)
	}
	res1, err := inst.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.AdaptEpochs) == 0 {
		t.Fatal("phase 1: no epochs evaluated")
	}
	res2, err := inst.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.AdaptEpochs) <= len(res1.AdaptEpochs) {
		t.Fatalf("controller dormant in phase 2: %d epochs then, %d now",
			len(res1.AdaptEpochs), len(res2.AdaptEpochs))
	}
}

// TestScorePProfileIsPerPhase pins the per-phase measurement semantics: a
// later phase's profile must not double-count earlier phases.
func TestScorePProfileIsPerPhase(t *testing.T) {
	s := newQuickSession(t)
	sel, err := s.Select(quickSpec)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := s.Start(sel, capi.RunOptions{Backend: capi.BackendScoreP, Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	res1, err := inst.Run()
	if err != nil {
		t.Fatal(err)
	}
	res2, err := inst.Run()
	if err != nil {
		t.Fatal(err)
	}
	r1, r2 := res1.Profile.Region("exchange_halo"), res2.Profile.Region("exchange_halo")
	if r1 == nil || r2 == nil {
		t.Fatal("exchange_halo missing from a phase profile")
	}
	if r2.Visits != r1.Visits {
		t.Fatalf("phase 2 visits %d != phase 1 visits %d — profile accumulated across phases", r2.Visits, r1.Visits)
	}
}

// TestRunWithExtraeTrace exercises the trace backend end to end: every
// dispatched event must land in the sharded buffer, the merged timeline
// must be virtual-time-ordered, and per-rank streams must be balanced.
func TestRunWithExtraeTrace(t *testing.T) {
	s := newQuickSession(t)
	sel, err := s.Select(quickSpec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(sel, capi.RunOptions{Backend: capi.BackendExtrae, Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("no trace report")
	}
	if res.Trace.Recorded != res.Events {
		t.Fatalf("trace recorded %d of %d dispatched events", res.Trace.Recorded, res.Events)
	}
	if res.Trace.Dropped != 0 || res.Trace.Wrapped != 0 {
		t.Fatalf("unbounded buffer dropped/wrapped events: %+v", res.Trace)
	}
	if len(res.Trace.Ranks) != 2 {
		t.Fatalf("rank summaries = %d", len(res.Trace.Ranks))
	}
	for _, rs := range res.Trace.Ranks {
		if rs.Enters != rs.Exits {
			t.Fatalf("rank %d unbalanced: %d enters, %d exits", rs.Rank, rs.Enters, rs.Exits)
		}
	}
	if int64(len(res.Trace.Timeline)) != res.Trace.Recorded {
		t.Fatalf("timeline %d records, recorded %d", len(res.Trace.Timeline), res.Trace.Recorded)
	}
	for i := 1; i < len(res.Trace.Timeline); i++ {
		if res.Trace.Timeline[i].TimeNs < res.Trace.Timeline[i-1].TimeNs {
			t.Fatal("merged timeline not virtual-time-ordered")
		}
	}
	if res.InitSeconds <= 0 {
		t.Fatal("tracer init cost not accounted")
	}
}

// TestExtraeTraceBoundedBuffer drives the same run through a tiny wrap-mode
// buffer: everything is still accounted, only the newest window survives.
func TestExtraeTraceBoundedBuffer(t *testing.T) {
	s := newQuickSession(t)
	sel, err := s.Select(quickSpec)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := s.Start(sel, capi.RunOptions{
		Backend: capi.BackendExtrae,
		Ranks:   2,
		Trace:   &capi.TraceOptions{BufEvents: 8, MaxEvents: 32, Wrap: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := inst.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.Recorded != res.Events {
		t.Fatalf("wrap mode rejected events: recorded %d of %d", res.Trace.Recorded, res.Events)
	}
	if res.Trace.Wrapped == 0 {
		t.Fatal("tiny buffer never wrapped")
	}
	if res.Trace.Recorded != res.Trace.Retained+res.Trace.Wrapped {
		t.Fatalf("accounting: recorded %d != retained %d + wrapped %d",
			res.Trace.Recorded, res.Trace.Retained, res.Trace.Wrapped)
	}
	// A second phase starts from a fresh buffer.
	res2, err := inst.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Trace.Recorded != res2.Events {
		t.Fatalf("phase 2 trace incomplete: %d of %d", res2.Trace.Recorded, res2.Events)
	}
	if inFlight, unpatched := inst.DroppedEvents(); inFlight != 0 || unpatched != 0 {
		t.Fatalf("drops without any reconfigure: %d/%d", inFlight, unpatched)
	}
}

// TestAdaptDemoteLadderEndToEnd exercises the default adapt behaviour
// through the public API: under a tight budget the controller first
// demotes hot low-duration functions to 1-in-N sampling (sleds stay
// patched, the stream thins), and functions that are already demoted and
// still blow the budget are deselected at later boundaries.
func TestAdaptDemoteLadderEndToEnd(t *testing.T) {
	s := newQuickSession(t)
	// A budget so tight that even the 1-in-64 thinned stream stays over
	// it: the ladder must demote first, then escalate to deselection.
	inst, err := s.Start(nil, capi.RunOptions{
		Ranks:    2,
		PatchAll: true,
		Adapt:    &capi.AdaptOptions{Budget: 0.000001},
	})
	if err != nil {
		t.Fatal(err)
	}
	var demotedSeen, droppedSeen bool
	var last *capi.RunResult
	for phase := 0; phase < 6 && !(demotedSeen && droppedSeen); phase++ {
		res, err := inst.Run()
		if err != nil {
			t.Fatal(err)
		}
		last = res
		for _, ep := range res.AdaptEpochs {
			if len(ep.Demoted) > 0 {
				demotedSeen = true
			}
			if len(ep.Dropped) > 0 {
				droppedSeen = true
			}
		}
	}
	if !demotedSeen {
		t.Fatal("controller never demoted under a tight budget")
	}
	if !droppedSeen {
		t.Fatal("ladder never escalated a demoted function to deselection")
	}
	// The demotions really thinned the stream, with exact conservation.
	if last.Sampling == nil {
		t.Fatal("run result carries no sampling snapshot")
	}
	c := last.Sampling.Counters
	if c.SampledEvents == 0 {
		t.Fatalf("no events sampled out: %+v", c)
	}
	if c.Delivered+c.SampledEvents+c.SuppressedPairs+c.CollapsedCalls != c.Enters {
		t.Fatalf("sampling counters do not reconcile: %+v", c)
	}
	if st := inst.Status(); st.Sampling == nil {
		t.Fatal("status carries no sampling view")
	}
}

// TestRunWithSamplingOptions covers the public sampling wiring: an initial
// table via RunOptions.Sampling, a live change via Instance.SetSampling,
// and exact end-of-phase accounting in the run result.
func TestRunWithSamplingOptions(t *testing.T) {
	s := newQuickSession(t)
	sel, err := s.Select(quickSpec)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := s.Start(sel, capi.RunOptions{
		Backend:  capi.BackendTALP,
		Ranks:    2,
		Sampling: &capi.SamplingOptions{Default: &capi.SamplingPolicy{Stride: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res1, err := inst.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res1.Sampling == nil || res1.Sampling.Default == nil || res1.Sampling.Default.Stride != 4 {
		t.Fatalf("sampling snapshot = %+v", res1.Sampling)
	}
	c := res1.Sampling.Counters
	if c.SampledEvents == 0 || c.Delivered+c.SampledEvents+c.SuppressedPairs+c.CollapsedCalls != c.Enters {
		t.Fatalf("phase 1 counters = %+v", c)
	}
	// Delivered is not just the derived identity: at 1-in-4 it must sit in
	// the exact per-(function,rank) ceiling band — each stride counter
	// delivers ceil(enters/4) of its own stream.
	slots := int64(res1.ActiveFuncs * 2) // ranks = 2
	if c.Delivered < c.Enters/4 || c.Delivered > c.Enters/4+slots {
		t.Fatalf("delivered %d outside the 1-in-4 band [%d, %d] for %d enters",
			c.Delivered, c.Enters/4, c.Enters/4+slots, c.Enters)
	}
	// Delivered events reach the backend; sampled-out ones do not: the
	// engine dispatched more events than the phase total says? No — the
	// engine count is dispatch-level, so it must exceed what TALP saw.
	if res1.TALP == nil {
		t.Fatal("no TALP report under sampling")
	}
	// Live change: clear the table; the next phase delivers everything.
	if err := inst.SetSampling(capi.SamplingOptions{}); err != nil {
		t.Fatal(err)
	}
	res2, err := inst.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Sampling == nil {
		t.Fatal("accounting lost after clearing the table")
	}
	c2 := res2.Sampling.Counters
	if c2.SampledEvents != c.SampledEvents {
		t.Fatalf("cleared table kept sampling: %+v then %+v", c, c2)
	}
	// Invalid configs mutate nothing.
	if err := inst.SetSampling(capi.SamplingOptions{Default: &capi.SamplingPolicy{Stride: -1}}); err == nil {
		t.Fatal("negative stride accepted")
	}
	if err := inst.SetSampling(capi.SamplingOptions{Funcs: map[string]capi.SamplingPolicy{"nope": {Stride: 2}}}); err == nil {
		t.Fatal("unknown function accepted")
	}
}
