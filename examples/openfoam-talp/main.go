// OpenFOAM + TALP: coarse region instrumentation of the icoFoam solver
// stand-in (the paper's Listing 3 scenario). The coarse selector collapses
// the nested solve→…→Amul wrapper chain so the TALP report shows the main
// solve entry and the hot kernels instead of a wall of single-caller
// wrappers; POP parallel-efficiency metrics are printed per region.
package main

import (
	"fmt"
	"log"
	"os"

	capi "capi"
)

func main() {
	app := capi.OpenFOAM(capi.OpenFOAMOptions{Scale: 0.05, Timesteps: 4})
	session, err := capi.NewSession(app, capi.SessionOptions{
		OptLevel: 2,
		// The cavity decomposition is mildly imbalanced; the skew shows
		// up in TALP's load-balance coefficients.
		RankWorkSkew: []float64{1.0, 1.06, 1.02, 1.08},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("OpenFOAM/icoFoam: %d call-graph nodes, %d objects\n",
		session.Graph().Len(), len(session.Build().Images))

	// The coarse TALP selection (§V-D): keep the kernels as critical
	// regions, collapse single-caller chains around them.
	sel, err := session.Select(`!import("mpi.capi")
excluded = join(inSystemHeader(%%), inlineSpecified(%%))
kernels = flops(">=", 10, loopDepth(">=", 1, %%))
sel = subtract(join(%mpi_comm, callPathTo(%kernels)), %excluded)
coarse(%sel, %kernels)
`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coarse IC: %d pre -> %d regions (%d compensated)\n",
		sel.Pre, sel.IC.Len(), sel.Added)
	if sel.IC.Contains("Foam::fvMesh::solve") {
		log.Fatal("coarse selector failed: single-caller wrapper retained")
	}
	if !sel.IC.Contains("Foam::lduMatrix::Amul") {
		log.Fatal("coarse selector failed: Amul kernel dropped")
	}

	res, err := session.Run(sel, capi.RunOptions{Backend: capi.BackendTALP, Ranks: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("T_init %.2fs, T_total %.2fs (virtual), %d regions patched\n",
		res.InitSeconds, res.TotalSeconds, res.Patched)
	if len(res.TALP.FailedPreInit) > 0 {
		fmt.Printf("regions entered before MPI_Init (not recorded, §VI-B): %v\n",
			res.TALP.FailedPreInit)
	}
	fmt.Println()
	if err := res.TALP.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
