// Refinement-loop: quantifies the paper's §VII-A usability argument. The
// static workflow pays a full recompilation for every IC adjustment; the
// dynamic (XRay) workflow pays one DynCaPI re-patch at start-up. This
// example performs three refinement iterations on the OpenFOAM stand-in
// and prints the accumulated turnaround for both workflows.
package main

import (
	"fmt"
	"log"

	capi "capi"
)

var iterations = []struct {
	note string
	spec string
}{
	{
		"initial mpi selection",
		`!import("mpi.capi")
excluded = join(inSystemHeader(%%), inlineSpecified(%%))
subtract(%mpi_comm, %excluded)
`,
	},
	{
		"too noisy: drop the per-patch Pstream helpers",
		`!import("mpi.capi")
excluded = join(inSystemHeader(%%), inlineSpecified(%%))
noisy = byName("ProcPatch", %%)
subtract(subtract(%mpi_comm, %excluded), %noisy)
`,
	},
	{
		"still too fine: coarse regions only",
		`!import("mpi.capi")
excluded = join(inSystemHeader(%%), inlineSpecified(%%))
sel = subtract(%mpi_comm, %excluded)
coarse(%sel)
`,
	},
}

func main() {
	session, err := capi.NewSession(capi.OpenFOAM(capi.OpenFOAMOptions{Scale: 0.05, Timesteps: 2}),
		capi.SessionOptions{OptLevel: 2})
	if err != nil {
		log.Fatal(err)
	}
	recompile := session.RecompileSeconds()
	fmt.Printf("OpenFOAM stand-in: one full rebuild costs %.0fs (paper: ~50 min at full scale)\n\n", recompile)

	var staticCost, dynamicCost float64
	for i, it := range iterations {
		sel, err := session.Select(it.spec)
		if err != nil {
			log.Fatal(err)
		}
		res, err := session.Run(sel, capi.RunOptions{Backend: capi.BackendTALP, Ranks: 4})
		if err != nil {
			log.Fatal(err)
		}
		staticCost += recompile
		dynamicCost += res.InitSeconds
		fmt.Printf("iteration %d (%s):\n", i+1, it.note)
		fmt.Printf("  IC size %5d | static turnaround +%.0fs | dynamic turnaround +%.2fs\n",
			sel.IC.Len(), recompile, res.InitSeconds)
	}
	fmt.Printf("\nafter %d refinements: static workflow %.0fs of rebuilds, dynamic workflow %.2fs of re-patching (%.0fx faster)\n",
		len(iterations), staticCost, dynamicCost, staticCost/dynamicCost)
}
