// Refinement-loop: quantifies the paper's §VII-A usability argument — and
// goes one step further. The static workflow pays a full recompilation for
// every IC adjustment. The paper's dynamic workflow pays one DynCaPI
// re-patch at start-up per iteration. This example refines *live*: one
// instance is started, and every subsequent iteration narrows the selection
// in place with Instance.Reconfigure — only the delta sleds are re-patched
// and the instrumentation runtime is never torn down, so the turnaround of
// an adjustment shrinks from a full T_init to the cost of the delta.
package main

import (
	"fmt"
	"log"

	capi "capi"
)

var iterations = []struct {
	note string
	spec string
}{
	{
		"initial mpi selection",
		`!import("mpi.capi")
excluded = join(inSystemHeader(%%), inlineSpecified(%%))
subtract(%mpi_comm, %excluded)
`,
	},
	{
		"too noisy: drop the per-patch Pstream helpers",
		`!import("mpi.capi")
excluded = join(inSystemHeader(%%), inlineSpecified(%%))
noisy = byName("ProcPatch", %%)
subtract(subtract(%mpi_comm, %excluded), %noisy)
`,
	},
	{
		"still too fine: coarse regions only",
		`!import("mpi.capi")
excluded = join(inSystemHeader(%%), inlineSpecified(%%))
sel = subtract(%mpi_comm, %excluded)
coarse(%sel)
`,
	},
}

func main() {
	session, err := capi.NewSession(capi.OpenFOAM(capi.OpenFOAMOptions{Scale: 0.05, Timesteps: 2}),
		capi.SessionOptions{OptLevel: 2})
	if err != nil {
		log.Fatal(err)
	}
	recompile := session.RecompileSeconds()
	fmt.Printf("OpenFOAM stand-in: one full rebuild costs %.0fs (paper: ~50 min at full scale)\n\n", recompile)

	// One live instance for the whole loop: started once, refined in place.
	var inst *capi.Instance
	var staticCost, dynamicCost float64
	for i, it := range iterations {
		sel, err := session.Select(it.spec)
		if err != nil {
			log.Fatal(err)
		}
		if inst == nil {
			// First iteration: start the instance and pay T_init once.
			inst, err = session.Start(sel, capi.RunOptions{Backend: capi.BackendTALP, Ranks: 4})
			if err != nil {
				log.Fatal(err)
			}
		} else {
			// Later iterations: re-select live. Only the delta sleds are
			// re-patched; the DynCaPI runtime stays up.
			rep, err := inst.Reconfigure(sel)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  live re-selection: +%d -%d functions (%d kept), %d sleds re-patched in %d mprotect windows\n",
				rep.Patched, rep.Unpatched, rep.Kept,
				rep.Batch.PatchedSleds+rep.Batch.UnpatchedSleds, rep.Batch.BatchWindows)
		}
		res, err := inst.Run()
		if err != nil {
			log.Fatal(err)
		}
		staticCost += recompile
		dynamicCost += res.InitSeconds
		fmt.Printf("iteration %d (%s):\n", i+1, it.note)
		fmt.Printf("  IC size %5d | static turnaround +%.0fs | live turnaround +%.6fs | %d events\n",
			sel.IC.Len(), recompile, res.InitSeconds, res.Events)
	}
	fmt.Printf("\nafter %d refinements: static workflow %.0fs of rebuilds, live workflow %.4fs of (re-)patching (%.0fx faster)\n",
		len(iterations), staticCost, dynamicCost, staticCost/dynamicCost)
	fmt.Printf("the instance was never torn down: %d live re-selections on one DynCaPI runtime\n", inst.Reconfigs())
}
