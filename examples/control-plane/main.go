// Control-plane demo: re-selects a *running* LULESH phase over HTTP.
//
// The in-process Fig. 1 loop (see examples/refinement-loop) needs the
// refining code to live inside the application. Here the loop is driven
// remotely instead: a control-plane server (internal/ctl) is mounted over a
// live instance, a long phase is started asynchronously with POST /v1/run,
// and while the ranks execute, a narrower selection is POSTed to
// /v1/select — the server compiles the spec, diffs the patched set and
// re-patches only the delta, returning the ReconfigReport to the remote
// caller. The phase is never restarted; /metrics shows the re-selection.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	capi "capi"
	"capi/internal/ctl"
)

const wideSpec = `!import("mpi.capi")
excluded = join(inSystemHeader(%%), inlineSpecified(%%))
subtract(%mpi_comm, %excluded)
`

const narrowSpec = `!import("mpi.capi")
excluded = join(inSystemHeader(%%), inlineSpecified(%%))
coarse(subtract(%mpi_comm, %excluded))
`

func main() {
	// A live LULESH instance with a deliberately broad initial selection.
	session, err := capi.NewSession(capi.Lulesh(capi.LuleshOptions{Timesteps: 12000}),
		capi.SessionOptions{OptLevel: 3})
	if err != nil {
		log.Fatal(err)
	}
	sel, err := session.Select(wideSpec)
	if err != nil {
		log.Fatal(err)
	}
	inst, err := session.Start(sel, capi.RunOptions{Backend: capi.BackendTALP, Ranks: 4})
	if err != nil {
		log.Fatal(err)
	}

	// Mount the control plane on a loopback listener — in production this
	// is `capi-serve`, a separate long-lived process.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, ctl.New(session, inst, "lulesh")) //nolint:errcheck
	base := "http://" + ln.Addr().String()
	fmt.Printf("control plane on %s\n", base)
	fmt.Printf("initial selection: %d functions patched\n\n", inst.Status().Patched)

	// Kick off a long phase; the POST returns immediately. Escape on
	// Runs > 0 too, in case the phase outruns the polling.
	post(base+"/v1/run", `{"wait":false}`)
	for st := status(base); !st.Running && st.Runs == 0; st = status(base) {
		if st.LastError != "" {
			log.Fatalf("phase failed: %s", st.LastError)
		}
		time.Sleep(time.Millisecond)
	}
	fmt.Println("phase executing; narrowing the selection over HTTP…")

	// Re-select mid-phase: raw spec source, like `curl --data-binary @spec`.
	resp, err := http.Post(base+"/v1/select", "text/plain", strings.NewReader(narrowSpec))
	if err != nil {
		log.Fatal(err)
	}
	var sr ctl.SelectResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("reconfigured live: -%d +%d functions (%d kept), %d sleds re-patched in %d mprotect windows\n",
		sr.Report.Unpatched, sr.Report.Patched, sr.Report.Kept,
		sr.Report.Batch.PatchedSleds+sr.Report.Batch.UnpatchedSleds, sr.Report.Batch.BatchWindows)
	fmt.Printf("active functions: %d (was %d)\n\n", sr.Active, inst.Status().Patched)

	// Wait for the phase to drain (LastRun lags the runs counter by an
	// instant, so wait for the summary itself), then show what the run saw.
	st := status(base)
	for ; st.Running || st.LastRun == nil; st = status(base) {
		if st.LastError != "" {
			log.Fatalf("phase failed: %s", st.LastError)
		}
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("phase done: %d events, %d re-selections visible to the run\n",
		st.LastRun.Events, st.LastRun.Reconfigs)

	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	raw := new(bytes.Buffer)
	raw.ReadFrom(mresp.Body) //nolint:errcheck
	mresp.Body.Close()
	fmt.Println("\nscraped /metrics:")
	for _, line := range strings.Split(raw.String(), "\n") {
		if strings.HasPrefix(line, "capi_") &&
			(strings.Contains(line, "reconfigs") || strings.Contains(line, "active") ||
				strings.Contains(line, "synthetic") || strings.Contains(line, "events_total")) {
			fmt.Println("  " + line)
		}
	}
}

func status(base string) ctl.StatusResponse {
	resp, err := http.Get(base + "/v1/status")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var st ctl.StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		log.Fatal(err)
	}
	return st
}

func post(url, body string) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode >= 300 {
		log.Fatalf("POST %s: status %d", url, resp.StatusCode)
	}
}
