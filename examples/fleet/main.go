// Fleet federation demo: one coordinator steering three capi-serve
// instances as a single system.
//
// Three members run the LULESH stand-in (4 simulated ranks each) behind
// their own control planes; the coordinator (internal/fleet) discovers
// them through self-registration, fans a re-selection out to all of them
// with one POST, and merges the read side back: /v1/fleet/status rolls up
// the members' counters, and /v1/fleet/report concatenates every member's
// per-rank TALP times and recomputes the POP metrics over the federated
// 12-rank job — a mean of the members' own efficiencies would be wrong,
// so only the raw rank times cross the wire.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	capi "capi"
	"capi/internal/ctl"
	"capi/internal/fleet"
)

const wideSpec = `!import("mpi.capi")
excluded = join(inSystemHeader(%%), inlineSpecified(%%))
subtract(%mpi_comm, %excluded)
`

const narrowSpec = `!import("mpi.capi")
excluded = join(inSystemHeader(%%), inlineSpecified(%%))
coarse(subtract(%mpi_comm, %excluded))
`

func main() {
	// The coordinator. In production this is `capi-fleet`, a separate
	// long-lived process.
	coord, err := fleet.New(fleet.Options{TTL: 10 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	defer coord.Close()
	coordLn := listen()
	go http.Serve(coordLn, coord) //nolint:errcheck
	coordURL := "http://" + coordLn.Addr().String()
	fmt.Printf("coordinator on %s\n", coordURL)

	// Three members, each its own session + instance + control plane —
	// in production three `capi-serve -fleet <coordinator>` processes.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var bases []string
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("member-%d", i)
		base := startMember(name)
		bases = append(bases, base)
		go fleet.Heartbeat(ctx, coordURL,
			fleet.RegisterRequest{URL: base, Name: name, App: "lulesh"},
			time.Second, nil)
	}
	for coordStatus(coordURL).Rollup.Members < 3 {
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("3 members registered\n\n")

	// Each member executes a phase under the wide selection.
	for _, base := range bases {
		post(base+"/v1/run", "application/json", `{"wait":true}`)
	}

	// One POST to the coordinator re-selects the whole fleet.
	resp, err := http.Post(coordURL+"/v1/select", "text/plain", strings.NewReader(narrowSpec))
	if err != nil {
		log.Fatal(err)
	}
	var fr fleet.FanoutResponse
	decode(resp, &fr)
	fmt.Printf("fan-out re-select: %d/%d members applied (divergent: %v)\n",
		len(fr.Applied), fr.Members, fr.Divergent)

	// Another phase per member under the narrow selection, then the merged
	// report: per-backend documents keyed by member, and fleet-wide POP.
	for _, base := range bases {
		post(base+"/v1/run", "application/json", `{"wait":true}`)
	}
	rresp, err := http.Get(coordURL + "/v1/fleet/report")
	if err != nil {
		log.Fatal(err)
	}
	var rep fleet.FleetReportResponse
	decode(rresp, &rep)
	fmt.Printf("\nfleet report: %d members, federated world of %d ranks\n",
		len(rep.Members), rep.WorldSize)
	for _, reg := range rep.Regions {
		fmt.Printf("  %-22s ranks %2d  PE %.3f  LB %.3f  CommE %.3f\n",
			reg.Name, reg.Ranks, reg.ParallelEfficiency, reg.LoadBalance,
			reg.CommunicationEfficiency)
	}

	st := coordStatus(coordURL)
	fmt.Printf("\nrollup: %d runs, %d events, %d re-selections across the fleet\n",
		st.Rollup.Runs, st.Rollup.Events, st.Rollup.Reconfigs)
}

// startMember builds one live LULESH instance and mounts its control
// plane on a loopback listener, returning the base URL.
func startMember(name string) string {
	session, err := capi.NewSession(capi.Lulesh(capi.LuleshOptions{Timesteps: 600}),
		capi.SessionOptions{OptLevel: 3})
	if err != nil {
		log.Fatal(err)
	}
	sel, err := session.Select(wideSpec)
	if err != nil {
		log.Fatal(err)
	}
	inst, err := session.Start(sel, capi.RunOptions{Backend: capi.BackendTALP, Ranks: 4})
	if err != nil {
		log.Fatal(err)
	}
	ln := listen()
	go http.Serve(ln, ctl.New(session, inst, name)) //nolint:errcheck
	return "http://" + ln.Addr().String()
}

func listen() net.Listener {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	return ln
}

func coordStatus(coordURL string) fleet.FleetStatusResponse {
	resp, err := http.Get(coordURL + "/v1/fleet/status")
	if err != nil {
		log.Fatal(err)
	}
	var st fleet.FleetStatusResponse
	decode(resp, &st)
	return st
}

func decode(resp *http.Response, v any) {
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		log.Fatal(err)
	}
}

func post(url, ctype, body string) {
	resp, err := http.Post(url, ctype, strings.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode >= 300 {
		log.Fatalf("POST %s: status %d", url, resp.StatusCode)
	}
}
