// Quickstart: the complete Fig. 1 workflow on a miniature MPI application —
// generate the app, build a session (call graph + XRay build), select the
// MPI communication functions, run with Score-P profiling, and print the
// call-path profile. Nothing is recompiled after the session is created.
package main

import (
	"fmt"
	"log"
	"os"

	capi "capi"
)

func main() {
	app := capi.Quickstart()
	session, err := capi.NewSession(app, capi.SessionOptions{OptLevel: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prepared %q: %d call-graph nodes, rebuild would cost %.0fs\n",
		app.Name, session.Graph().Len(), session.RecompileSeconds())

	// Select everything on a call path to MPI communication, minus system
	// headers and inline-marked functions (the paper's Listing 1 shape).
	sel, err := session.Select(`!import("mpi.capi")
excluded = join(inSystemHeader(%%), inlineSpecified(%%))
subtract(%mpi_comm, %excluded)
`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selected %d of %d functions (%d pre, %d compensation)\n",
		sel.IC.Len(), session.Graph().Len(), sel.Pre, sel.Added)

	// Baseline and instrumented runs.
	vanilla, err := session.RunVanilla(4)
	if err != nil {
		log.Fatal(err)
	}
	res, err := session.Run(sel, capi.RunOptions{Backend: capi.BackendScoreP, Ranks: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vanilla %.3fs | instrumented %.3fs (T_init %.3fs, %d events)\n\n",
		vanilla, res.TotalSeconds, res.InitSeconds, res.Events)

	if err := res.Profile.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
