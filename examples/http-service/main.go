// HTTP-service demo: serve real request traffic through instrumented
// function trees and let the tail-latency SLO controller trade
// instrumentation coverage for latency, live.
//
// A synthetic web service (capi.Webservice: feed, user, order, search,
// asset and health endpoints) is started fully instrumented with the
// adaptation controller in SLO mode: "keep every endpoint's p99 at or
// under the target with maximum coverage". The capi/middleware service
// executes each request's handler tree on a virtual clock, and the
// inline extrae backend charges its real trace-write cost per event to
// that same clock — so at full coverage the hot feed endpoint (hundreds
// of events per request) misses the SLO by a wide margin. As traffic
// flows, the controller walks the demote → deselect ladder one function
// at a time (cheapest information lost first) until the measured p99
// meets the target, then stops: the remaining functions stay
// instrumented.
package main

import (
	"fmt"
	"log"
	"math/rand"

	capi "capi"
	"capi/middleware"
)

func main() {
	session, err := capi.NewAppSession("webservice", 0)
	if err != nil {
		log.Fatal(err)
	}

	// Full initial instrumentation, 4 middleware workers, SLO mode:
	// p99 ≤ 5ms per endpoint. The extrae trace write costs 140µs per
	// event, so at full coverage the feed endpoint (~600 enter/exit
	// pairs per request) is two orders of magnitude over the target;
	// with its tree deselected the work alone is ~2ms, so a narrowed
	// selection can meet it.
	inst, err := session.Start(nil, capi.RunOptions{
		PatchAll:    true,
		Backends:    []string{"extrae"},
		Ranks:       2,
		HTTPWorkers: 4,
		Adapt:       &capi.AdaptOptions{SLOTargetP99Ns: 5_000_000},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer inst.Close()

	svc, err := middleware.New(inst, session.Program(), capi.WebserviceEndpoints(), middleware.Options{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}

	report := func(tag string) {
		st := inst.Status()
		fmt.Printf("--- %s ---\n", tag)
		for _, ep := range st.HTTP.Endpoints {
			if ep.Requests == 0 {
				continue
			}
			fmt.Printf("%-22s %5d reqs  p99 %6.2fms  instrumented %d/%d (%d demoted)\n",
				ep.Endpoint, ep.Requests, ep.P99Ms, ep.ActiveFunctions, ep.TotalFunctions, ep.DemotedFunctions)
		}
		if st.SLO != nil {
			for _, ep := range st.SLO.Endpoints {
				if ep.Requests == 0 {
					continue
				}
				fmt.Printf("%-22s SLO met=%v ladder=%d dropped=%v\n", ep.Endpoint, ep.Met, ep.Steps, ep.Dropped)
			}
		}
	}

	// Drive weighted traffic. Each Do executes the endpoint's full
	// instrumented call tree on the worker's virtual clock; the observed
	// latency feeds the SLO controller, which narrows between requests.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		if _, err := svc.Do(svc.RandomRoute(rng)); err != nil {
			log.Fatal(err)
		}
	}
	report("after 200 requests")

	for i := 0; i < 29800; i++ {
		if _, err := svc.Do(svc.RandomRoute(rng)); err != nil {
			log.Fatal(err)
		}
	}
	report("after 30000 requests")
	fmt.Printf("reconfigs: %d, events: %d\n", inst.Reconfigs(), inst.Status().Events)
}
