// Extrae-style tracing: the LULESH stand-in runs under the sharded trace
// backend — every enter/exit lands as a timestamped record in the executing
// rank's own ring buffer (no cross-rank locking), full rings flush as
// batched segments, and a bounded wrap-mode budget keeps only the newest
// window. The overhead-budget controller narrows the selection mid-run, so
// the output also demonstrates the completeness accounting: every
// dispatched event is either retained, wrapped away, or counted in an
// explicit drop class.
package main

import (
	"fmt"
	"log"
	"os"

	capi "capi"
)

func main() {
	app := capi.Lulesh(capi.LuleshOptions{})
	session, err := capi.NewSession(app, capi.SessionOptions{OptLevel: 3})
	if err != nil {
		log.Fatal(err)
	}
	sel, err := session.Select(`!import("mpi.capi")
excluded = join(inSystemHeader(%%), inlineSpecified(%%))
subtract(%mpi_comm, %excluded)
`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selected %d functions for tracing\n", sel.IC.Len())

	inst, err := session.Start(sel, capi.RunOptions{
		Backend: capi.BackendExtrae,
		Ranks:   4,
		// A deliberately small wrap-mode budget: 2048-event rings, 16k
		// retained events per rank, oldest segment discarded first.
		Trace: &capi.TraceOptions{BufEvents: 2048, MaxEvents: 16384, Wrap: true},
		// The controller narrows the selection whenever instrumentation
		// overhead exceeds the (deliberately tight) budget — mid-run, via
		// delta re-patch, with synthetic exits closing dangling regions.
		Adapt: &capi.AdaptOptions{Budget: 0.000002},
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := inst.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("T_init %.3fs, T_total %.3fs (virtual), %d events dispatched, %d live re-selections\n\n",
		res.InitSeconds, res.TotalSeconds, res.Events, res.Reconfigs)
	if err := res.Trace.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Completeness: dispatched = delivered to the tracer + dropped by the
	// runtime inside the documented windows. The tracer's own accounting
	// splits delivered into retained + wrapped + policy-dropped.
	inFlight, unpatched := inst.DroppedEvents()
	delivered := res.Trace.Recorded + res.Trace.Dropped
	fmt.Printf("\ncompleteness: %d dispatched = %d traced + %d in-flight drops + %d spurious\n",
		res.Events, delivered, inFlight, unpatched)
	if delivered+inFlight+unpatched != res.Events {
		log.Fatalf("event accounting broken: %d != %d", delivered+inFlight+unpatched, res.Events)
	}
	if n := inst.SyntheticExits(); n > 0 {
		fmt.Printf("synthetic exits: %d dangling enters closed by live re-selection\n", n)
	}
	if len(res.DroppedFuncs) > 0 {
		fmt.Printf("controller dropped %d functions to stay on budget\n", len(res.DroppedFuncs))
	}
}
