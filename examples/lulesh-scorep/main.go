// LULESH + Score-P: fine-grained kernel profiling of the LULESH proxy app
// (§VI, Table I's lulesh rows), including one refinement iteration of the
// Fig. 1 loop driven by a scorep-score-style filter suggestion — without
// any recompilation between runs.
package main

import (
	"fmt"
	"log"
	"os"

	capi "capi"
)

const kernelsSpec = `excluded = join(inSystemHeader(%%), inlineSpecified(%%))
kernels = flops(">=", 10, loopDepth(">=", 1, %%))
subtract(callPathTo(%kernels), %excluded)
`

func main() {
	session, err := capi.NewSession(capi.Lulesh(capi.LuleshOptions{Timesteps: 20}),
		capi.SessionOptions{OptLevel: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LULESH: %d call-graph nodes (paper: 3,360); full rebuild would cost %.0fs\n",
		session.Graph().Len(), session.RecompileSeconds())

	// Iteration 1: compute-kernel selection.
	sel, err := session.Select(kernelsSpec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kernels IC: %d pre -> %d selected, %d added by inlining compensation\n",
		sel.Pre, sel.Selected, sel.Added)
	fmt.Printf("  removed (inlined at -O3): %v\n", sel.RemovedInlined)

	run1, err := session.Run(sel, capi.RunOptions{Backend: capi.BackendScoreP, Ranks: 4})
	if err != nil {
		log.Fatal(err)
	}
	vanilla, err := session.RunVanilla(4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run 1: %.2fs vs vanilla %.2fs (+%.1f%%), %d events\n\n",
		run1.TotalSeconds, vanilla, 100*(run1.TotalSeconds-vanilla)/vanilla, run1.Events)

	// Survey: which measured region has the most visits relative to its
	// time? (What scorep-score flags as filter candidates.)
	var worst string
	var worstVisits int64
	for _, r := range run1.Profile.Regions {
		if r.Name == "main" {
			continue
		}
		if r.Visits > worstVisits {
			worst, worstVisits = r.Name, r.Visits
		}
	}
	fmt.Printf("refinement: excluding most-visited region %q (%d visits)\n", worst, worstVisits)

	// Iteration 2: same spec minus the noisy region and everything it
	// calls (otherwise the inlining compensation would re-add it as the
	// first symbol-bearing caller of its inlined children). One re-patch,
	// not a 50-minute rebuild.
	sel2, err := session.Select(kernelsSpec + fmt.Sprintf(
		"noisy = callPathFrom(byName(\"^%s$\", %%%%))\nsubtract(subtract(callPathTo(%%kernels), %%excluded), %%noisy)\n", worst))
	if err != nil {
		log.Fatal(err)
	}
	run2, err := session.Run(sel2, capi.RunOptions{Backend: capi.BackendScoreP, Ranks: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run 2: %.2fs (+%.1f%%), %d events — turnaround %.2fs instead of a %.0fs rebuild\n\n",
		run2.TotalSeconds, 100*(run2.TotalSeconds-vanilla)/vanilla, run2.Events,
		run2.InitSeconds, session.RecompileSeconds())

	if err := run2.Profile.WriteCallTree(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
