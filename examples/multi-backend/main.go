// Multi-backend fan-out: one LULESH run feeds TALP parallel-efficiency
// metrics *and* an Extrae-style trace from the same event stream, through
// the registry-built mux — no second run, no second patching pass. While
// the phase executes, the selection is narrowed live; the mux delivers the
// synthetic exits that close dangling enters to *every* stateful backend
// (counted per backend in the ReconfigReport), so the TALP regions stay
// balanced and the trace accounting stays exact even though both watched
// the same re-selection.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	capi "capi"
)

const wideSpec = `!import("mpi.capi")
excluded = join(inSystemHeader(%%), inlineSpecified(%%))
subtract(%mpi_comm, %excluded)
`

const narrowSpec = `!import("mpi.capi")
excluded = join(inSystemHeader(%%), inlineSpecified(%%))
coarse(subtract(%mpi_comm, %excluded))
`

func main() {
	session, err := capi.NewSession(capi.Lulesh(capi.LuleshOptions{Timesteps: 4000}),
		capi.SessionOptions{OptLevel: 3})
	if err != nil {
		log.Fatal(err)
	}
	wide, err := session.Select(wideSpec)
	if err != nil {
		log.Fatal(err)
	}
	narrow, err := session.Select(narrowSpec)
	if err != nil {
		log.Fatal(err)
	}

	// Two backends from the registry, one instrumented run. The registry is
	// open: capi.RegisterBackend adds your own (see the README cookbook).
	fmt.Printf("registered backends: %v\n", capi.RegisteredBackends())
	inst, err := session.Start(wide, capi.RunOptions{
		Backends: []string{"talp", "extrae"},
		Ranks:    4,
		Trace:    &capi.TraceOptions{BufEvents: 4096},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("attached: %v — %d functions patched, T_init %.2fs (virtual)\n\n",
		inst.Backends(), inst.Status().Patched, inst.InitSeconds())

	// Execute the phase on its own goroutine and narrow the selection while
	// the ranks are provably inside it — the Fig. 1 loop without leaving
	// the process, with two measurement systems watching.
	phase := make(chan *capi.RunResult, 1)
	go func() {
		res, err := inst.Run()
		if err != nil {
			log.Fatal(err)
		}
		phase <- res
	}()
	for !inst.Status().Running && inst.Runs() == 0 {
		time.Sleep(time.Millisecond)
	}
	rep, err := inst.Reconfigure(narrow)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("narrowed live: -%d +%d functions (%d kept), %d sleds re-patched\n",
		rep.Unpatched, rep.Patched, rep.Kept,
		rep.Batch.PatchedSleds+rep.Batch.UnpatchedSleds)
	fmt.Printf("synthetic exits per backend: %v (total %d)\n\n",
		rep.SyntheticExitsByBackend, rep.SyntheticExits)

	res := <-phase
	fmt.Printf("phase done: T_total %.2fs (virtual), %d events to each of %d backends\n\n",
		res.TotalSeconds, res.Events, len(res.Backends))

	// Both reports came from the same event stream; the envelope carries
	// them keyed by backend name, each self-describing its kind.
	for _, name := range res.Backends {
		rep := res.Reports[name]
		fmt.Printf("== %s (kind %q) ==\n", name, rep.Kind())
	}
	fmt.Println()
	if err := res.TALP.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := res.Trace.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Consistency across the fan-out: TALP closed every region the
	// re-selection left dangling, and the trace accounting is exact — every
	// dispatched event reached both backends or is in an explicit drop class.
	inFlight, unpatched := inst.DroppedEvents()
	delivered := res.Trace.Recorded + res.Trace.Dropped
	fmt.Printf("\ncompleteness: %d dispatched = %d traced + %d in-flight drops + %d spurious\n",
		res.Events, delivered, inFlight, unpatched)
	if delivered+inFlight+unpatched != res.Events {
		log.Fatalf("event accounting broken: %d != %d", delivered+inFlight+unpatched, res.Events)
	}
	if by := inst.SyntheticExitsByBackend(); len(by) > 0 {
		fmt.Printf("dangling enters closed per backend: %v\n", by)
	}
}
