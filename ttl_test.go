package capi_test

import (
	"errors"
	"testing"
	"time"

	capi "capi"
)

// ttlFixture is one live instance plus the machinery the interleaving
// table needs: a wide and a narrow selection to flip between, and a
// channel fed by SetTTLNotify so tests wait for delivered reverts instead
// of sleeping.
type ttlFixture struct {
	inst         *capi.Instance
	wide, narrow *capi.Selection
	expiries     chan capi.TTLExpiry
}

func newTTLFixture(t *testing.T) *ttlFixture {
	t.Helper()
	s := newQuickSession(t)
	wide, err := s.Select(quickSpec)
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := s.Select(quickCoarseSpec)
	if err != nil {
		t.Fatal(err)
	}
	if wide.IC.Len() == narrow.IC.Len() {
		t.Fatalf("fixture needs distinguishable selections, both have %d functions", wide.IC.Len())
	}
	inst, err := s.Start(wide, capi.RunOptions{Backends: []string{"talp"}, Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(inst.Close)
	f := &ttlFixture{inst: inst, wide: wide, narrow: narrow, expiries: make(chan capi.TTLExpiry, 4)}
	inst.SetTTLNotify(func(e capi.TTLExpiry) { f.expiries <- e })
	return f
}

func (f *ttlFixture) activeLen(t *testing.T) int {
	t.Helper()
	return len(f.inst.ActiveFunctionNames())
}

func (f *ttlFixture) waitExpiry(t *testing.T, kind string) capi.TTLExpiry {
	t.Helper()
	select {
	case e := <-f.expiries:
		if e.Kind != kind {
			t.Fatalf("expiry kind = %q, want %q", e.Kind, kind)
		}
		return e
	case <-time.After(10 * time.Second):
		t.Fatalf("no %q expiry delivered", kind)
		return capi.TTLExpiry{}
	}
}

// TestTTLManualReselectInterleavings is the interleaving table for
// ephemeral probes vs. manual control: explicit calls cancel pending
// reverts, overlapping TTLs coalesce onto the original base, and the two
// slots (select, sampling) never interfere.
func TestTTLManualReselectInterleavings(t *testing.T) {
	stride := func(n int) capi.SamplingOptions {
		return capi.SamplingOptions{Default: &capi.SamplingPolicy{Stride: n}}
	}
	cases := []struct {
		name string
		run  func(t *testing.T, f *ttlFixture)
	}{
		{"explicit select before expiry cancels the revert", func(t *testing.T, f *ttlFixture) {
			if _, err := f.inst.ReconfigureTTL(f.narrow, time.Hour); err != nil {
				t.Fatal(err)
			}
			if st := f.inst.TTLStatus(); !st.SelectPending || st.Scheduled != 1 {
				t.Fatalf("after ttl'd select: %+v", st)
			}
			if got := f.activeLen(t); got != f.narrow.IC.Len() {
				t.Fatalf("override not applied: %d active, want %d", got, f.narrow.IC.Len())
			}
			if _, err := f.inst.Reconfigure(f.wide); err != nil {
				t.Fatal(err)
			}
			st := f.inst.TTLStatus()
			if st.SelectPending || st.Canceled != 1 || st.Expired != 0 {
				t.Fatalf("explicit select did not cancel the revert: %+v", st)
			}
			if got := f.activeLen(t); got != f.wide.IC.Len() {
				t.Fatalf("explicit selection lost: %d active, want %d", got, f.wide.IC.Len())
			}
		}},
		{"overlapping TTLs revert to the original base", func(t *testing.T, f *ttlFixture) {
			// First override: one-hour TTL, base = the wide Start selection.
			if _, err := f.inst.ReconfigureTTL(f.narrow, time.Hour); err != nil {
				t.Fatal(err)
			}
			// Second override lands while the first is pending: it must keep
			// the *original* base, not adopt the (narrow) override state.
			if _, err := f.inst.ReconfigureTTL(f.narrow, 30*time.Millisecond); err != nil {
				t.Fatal(err)
			}
			e := f.waitExpiry(t, "select")
			if e.Report == nil {
				t.Fatal("select expiry carried no ReconfigReport")
			}
			if got := f.activeLen(t); got != f.wide.IC.Len() {
				t.Fatalf("reverted to %d active functions, want the original base %d", got, f.wide.IC.Len())
			}
			st := f.inst.TTLStatus()
			if st.Scheduled != 2 || st.Expired != 1 || st.SelectPending {
				t.Fatalf("counters after coalesced expiry: %+v", st)
			}
		}},
		{"expired select revert restores the last explicit selection", func(t *testing.T, f *ttlFixture) {
			// The most recent *explicit* select becomes the base, not Start's.
			if _, err := f.inst.Reconfigure(f.narrow); err != nil {
				t.Fatal(err)
			}
			if _, err := f.inst.ReconfigureTTL(f.wide, 30*time.Millisecond); err != nil {
				t.Fatal(err)
			}
			if got := f.activeLen(t); got != f.wide.IC.Len() {
				t.Fatalf("override not applied: %d active", got)
			}
			f.waitExpiry(t, "select")
			if got := f.activeLen(t); got != f.narrow.IC.Len() {
				t.Fatalf("reverted to %d active, want the explicit narrow %d", got, f.narrow.IC.Len())
			}
		}},
		{"sampling TTL reverts to the last explicit table", func(t *testing.T, f *ttlFixture) {
			if err := f.inst.SetSampling(stride(4)); err != nil {
				t.Fatal(err)
			}
			if err := f.inst.SetSamplingTTL(stride(64), 30*time.Millisecond); err != nil {
				t.Fatal(err)
			}
			if got := f.inst.Sampling(); got.Default == nil || got.Default.Stride != 64 {
				t.Fatalf("override not applied: %+v", got.Default)
			}
			e := f.waitExpiry(t, "sampling")
			if e.Sampling == nil {
				t.Fatal("sampling expiry carried no snapshot")
			}
			if got := f.inst.Sampling(); got.Default == nil || got.Default.Stride != 4 {
				t.Fatalf("reverted table = %+v, want the explicit stride-4 default", got.Default)
			}
		}},
		{"sampling TTL with no explicit table reverts to full delivery", func(t *testing.T, f *ttlFixture) {
			if err := f.inst.SetSamplingTTL(stride(16), 30*time.Millisecond); err != nil {
				t.Fatal(err)
			}
			f.waitExpiry(t, "sampling")
			if got := f.inst.Sampling(); got.Configured {
				t.Fatalf("revert left a table configured: %+v", got)
			}
		}},
		{"explicit sampling before expiry cancels the revert", func(t *testing.T, f *ttlFixture) {
			if err := f.inst.SetSamplingTTL(stride(64), time.Hour); err != nil {
				t.Fatal(err)
			}
			if st := f.inst.TTLStatus(); !st.SamplingPending {
				t.Fatalf("no pending sampling revert: %+v", st)
			}
			if err := f.inst.SetSampling(stride(8)); err != nil {
				t.Fatal(err)
			}
			st := f.inst.TTLStatus()
			if st.SamplingPending || st.Canceled != 1 {
				t.Fatalf("explicit table did not cancel the revert: %+v", st)
			}
			if got := f.inst.Sampling(); got.Default == nil || got.Default.Stride != 8 {
				t.Fatalf("explicit table lost: %+v", got.Default)
			}
		}},
		{"select and sampling TTLs expire independently", func(t *testing.T, f *ttlFixture) {
			if err := f.inst.SetSamplingTTL(stride(64), time.Hour); err != nil {
				t.Fatal(err)
			}
			if _, err := f.inst.ReconfigureTTL(f.narrow, 30*time.Millisecond); err != nil {
				t.Fatal(err)
			}
			f.waitExpiry(t, "select")
			st := f.inst.TTLStatus()
			if !st.SamplingPending || st.Expired != 1 {
				t.Fatalf("select expiry disturbed the sampling slot: %+v", st)
			}
			if got := f.inst.Sampling(); got.Default == nil || got.Default.Stride != 64 {
				t.Fatalf("sampling override lost: %+v", got.Default)
			}
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			c.run(t, newTTLFixture(t))
		})
	}
}

// TestReconfigureTTLNeedsBase: an instance started with PatchAll and never
// explicitly selected has no base snapshot an ephemeral probe could revert
// to — the TTL'd select is rejected with the sentinel (the control plane
// maps it to 409).
func TestReconfigureTTLNeedsBase(t *testing.T) {
	s := newQuickSession(t)
	inst, err := s.Start(nil, capi.RunOptions{Backends: []string{"talp"}, Ranks: 2, PatchAll: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(inst.Close)
	narrow, err := s.Select(quickCoarseSpec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.ReconfigureTTL(narrow, time.Minute); !errors.Is(err, capi.ErrNoTTLBase) {
		t.Fatalf("err = %v, want ErrNoTTLBase", err)
	}
	// An explicit select establishes the base; the TTL'd one then works.
	if _, err := inst.Reconfigure(narrow); err != nil {
		t.Fatal(err)
	}
	if _, err := inst.ReconfigureTTL(narrow, time.Minute); err != nil {
		t.Fatalf("ttl'd select after explicit base: %v", err)
	}
	if st := inst.TTLStatus(); !st.SelectPending {
		t.Fatalf("no pending revert: %+v", st)
	}
}
