package capi

// Serving-traffic support: the capi/middleware package maps live HTTP
// requests onto the instrumented dispatch path. Each middleware worker
// owns a RequestContext — a dedicated dispatch rank *beyond* the MPI
// world (RunOptions.HTTPWorkers sizes the pool) with its own virtual
// clock, async pipeline shard and sampler slot, so concurrent requests
// keep the single-writer hot-path contract without touching the
// workload's ranks. A RequestContext carries no MPI rank: the TALP
// backend (an MPI-region tool) skips its events by design, while none,
// scorep and extrae receive them like any rank's.
//
// The Instance additionally keeps per-endpoint request accounting —
// fixed-boundary latency histograms plus a recent-window ring for
// p50/p99 — and, on an SLO-adaptive instance, forwards every observed
// request latency to the adapt controller as its tail-latency signal.

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"capi/internal/vtime"
	"capi/internal/xray"
)

// httpBucketBoundsNs are the fixed per-endpoint latency histogram
// boundaries (a classic web-latency spread, 0.5ms..1s); the implicit
// +Inf bucket is the endpoint's total request count.
var httpBucketBoundsNs = [...]int64{
	500 * vtime.Microsecond,
	1 * vtime.Millisecond,
	int64(2.5 * float64(vtime.Millisecond)),
	5 * vtime.Millisecond,
	10 * vtime.Millisecond,
	25 * vtime.Millisecond,
	50 * vtime.Millisecond,
	100 * vtime.Millisecond,
	250 * vtime.Millisecond,
	500 * vtime.Millisecond,
	1000 * vtime.Millisecond,
}

// httpLatencyRing is the per-endpoint recent-latency window the snapshot
// percentiles are computed over.
const httpLatencyRing = 1024

// httpState is the Instance's middleware support state.
type httpState struct {
	mu        sync.Mutex
	allocated int                      //capi:guardedby mu — request-context ranks handed out
	nameToID  map[string]int32         //capi:guardedby mu — lazy function-name index
	endpoints map[string]*httpEndpoint //capi:guardedby mu — map itself; values have own sync
}

// httpEndpoint is one endpoint's request accounting. The hot-path fields
// are atomics (many workers observe concurrently); the percentile ring
// has its own small lock.
type httpEndpoint struct {
	name    string
	funcIDs []int32 // sorted; replaced wholesale under httpState.mu

	requests atomic.Int64
	sumNs    atomic.Int64
	buckets  [len(httpBucketBoundsNs)]atomic.Int64 // raw per-bucket counts (not cumulative)
	overflow atomic.Int64                          // > largest boundary

	mu      sync.Mutex
	ring    [httpLatencyRing]int64 //capi:guardedby mu
	written int                    //capi:guardedby mu
}

// RequestContext is one middleware worker's exclusive dispatch context: a
// dedicated rank ID past the MPI world with its own virtual clock. It
// implements the xray thread-context contract, so Enter/Exit feed the
// exact same handler chain — sampler, async pipeline, backends — as the
// workload's ranks. NOT safe for concurrent use; the middleware enforces
// exclusivity with a checkout pool.
type RequestContext struct {
	inst   *Instance
	rankID int
	clk    vtime.Clock
}

// RankID implements the dispatch thread context.
func (rc *RequestContext) RankID() int { return rc.rankID }

// Clock implements the dispatch thread context.
func (rc *RequestContext) Clock() *vtime.Clock { return &rc.clk }

// Now returns the context's virtual clock value.
func (rc *RequestContext) Now() int64 { return rc.clk.Now() }

// Advance moves the context's virtual clock forward by ns (modelled
// request work or instrumentation cost).
func (rc *RequestContext) Advance(ns int64) { rc.clk.Advance(ns) }

// Enter dispatches a function-entry event for id on this context's rank.
func (rc *RequestContext) Enter(id int32) { rc.inst.xr.Dispatch(rc, id, xray.Entry) }

// Exit dispatches a function-exit event for id on this context's rank.
func (rc *RequestContext) Exit(id int32) { rc.inst.xr.Dispatch(rc, id, xray.Exit) }

// NewRequestContexts allocates n exclusive request contexts with rank IDs
// directly after the MPI world. The instance-wide total is bounded by
// RunOptions.HTTPWorkers — each context needs the async pipeline shard
// and sampler slot that Start sized for it.
func (i *Instance) NewRequestContexts(n int) ([]*RequestContext, error) {
	if i.rt == nil {
		return nil, fmt.Errorf("capi: instance is not instrumented")
	}
	if n < 1 {
		return nil, fmt.Errorf("capi: request context count %d < 1", n)
	}
	i.http.mu.Lock()
	defer i.http.mu.Unlock()
	if i.http.allocated+n > i.opts.HTTPWorkers {
		return nil, fmt.Errorf("capi: %d request contexts requested, %d of %d remaining (RunOptions.HTTPWorkers)",
			n, i.opts.HTTPWorkers-i.http.allocated, i.opts.HTTPWorkers)
	}
	out := make([]*RequestContext, n)
	for k := range out {
		out[k] = &RequestContext{inst: i, rankID: i.opts.Ranks + i.http.allocated + k}
	}
	i.http.allocated += n
	return out, nil
}

// ResolveFunctionName maps a function name to its packed XRay ID. The
// index over the resolved set is built lazily on first use. Ambiguous
// names (several instrumented copies) resolve to the lowest ID.
func (i *Instance) ResolveFunctionName(name string) (int32, bool) {
	if i.rt == nil {
		return 0, false
	}
	i.http.mu.Lock()
	if i.http.nameToID == nil {
		idx := map[string]int32{}
		for _, rf := range i.rt.Funcs() {
			if rf.Name == "" {
				continue
			}
			if _, ok := idx[rf.Name]; !ok {
				idx[rf.Name] = rf.PackedID
			}
		}
		i.http.nameToID = idx
	}
	id, ok := i.http.nameToID[name]
	i.http.mu.Unlock()
	return id, ok
}

// FunctionActive reports whether the function is in the current
// selection. False for uninstrumented instances and unknown IDs.
func (i *Instance) FunctionActive(id int32) bool {
	return i.rt != nil && i.rt.Active(id)
}

// FunctionStride returns the function's effective 1-in-N sampling stride
// (1 = full delivery) — the signal that the adapt ladder demoted a
// function: only every Nth call pays the backend's per-event cost.
func (i *Instance) FunctionStride(id int32) int {
	if i.rt == nil {
		return 1
	}
	return i.rt.FuncStride(id)
}

// RegisterHTTPEndpoint declares one served endpoint and the packed IDs of
// its instrumented call tree. On an SLO-adaptive instance the endpoint is
// also registered with the controller, scoping its ladder to these
// functions. Re-registering a name replaces the function set but keeps
// the accumulated latency accounting.
func (i *Instance) RegisterHTTPEndpoint(name string, funcIDs []int32) {
	ids := append([]int32(nil), funcIDs...)
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	i.http.mu.Lock()
	if i.http.endpoints == nil {
		i.http.endpoints = map[string]*httpEndpoint{}
	}
	ep, ok := i.http.endpoints[name]
	if !ok {
		ep = &httpEndpoint{name: name}
		i.http.endpoints[name] = ep
	}
	ep.funcIDs = ids
	i.http.mu.Unlock()
	if i.ctrl != nil {
		i.ctrl.RegisterEndpoint(name, ids)
	}
}

// ObserveHTTPRequest records one completed request's latency for a
// registered endpoint and, on an SLO-adaptive instance, feeds it to the
// controller as the tail-latency signal. Unregistered endpoints are
// ignored. Safe for concurrent use.
func (i *Instance) ObserveHTTPRequest(endpoint string, latencyNs int64) {
	i.http.mu.Lock()
	ep := i.http.endpoints[endpoint]
	i.http.mu.Unlock()
	if ep == nil {
		return
	}
	ep.requests.Add(1)
	ep.sumNs.Add(latencyNs)
	slot := sort.Search(len(httpBucketBoundsNs), func(k int) bool { return latencyNs <= httpBucketBoundsNs[k] })
	if slot < len(httpBucketBoundsNs) {
		ep.buckets[slot].Add(1)
	} else {
		ep.overflow.Add(1)
	}
	ep.mu.Lock()
	ep.ring[ep.written%httpLatencyRing] = latencyNs
	ep.written++
	ep.mu.Unlock()
	if i.ctrl != nil {
		i.ctrl.ObserveRequest(endpoint, latencyNs)
	}
}

// HTTPBucket is one cumulative histogram bucket (requests with latency
// ≤ LeMs).
type HTTPBucket struct {
	LeMs  float64 `json:"leMs"`
	Count int64   `json:"count"`
}

// HTTPEndpointStatus is one endpoint's request/latency view: totals, the
// cumulative histogram (the implicit +Inf bucket is Requests), recent
// p50/p99, and how much of the endpoint's call tree is still
// instrumented — the coverage the SLO ladder trades against latency.
type HTTPEndpointStatus struct {
	Endpoint string  `json:"endpoint"`
	Requests int64   `json:"requests"`
	SumMs    float64 `json:"sumMs"`
	// P50Ms and P99Ms are computed over the recent-latency window (up to
	// the last 1024 requests), not the full history.
	P50Ms   float64      `json:"p50Ms"`
	P99Ms   float64      `json:"p99Ms"`
	Buckets []HTTPBucket `json:"buckets"`
	// TotalFunctions is the size of the endpoint's registered call tree;
	// ActiveFunctions how many are currently selected; DemotedFunctions
	// how many of those run at a reduced sampling stride.
	TotalFunctions   int `json:"totalFunctions"`
	ActiveFunctions  int `json:"activeFunctions"`
	DemotedFunctions int `json:"demotedFunctions"`
}

// HTTPStatus is the middleware's instance-wide snapshot, served on
// /v1/status and exported as capi_http_* Prometheus series.
type HTTPStatus struct {
	Workers   int                  `json:"workers"`
	Requests  int64                `json:"requests"`
	Endpoints []HTTPEndpointStatus `json:"endpoints"`
}

// HTTPSnapshot returns the per-endpoint request/latency view, or nil when
// no endpoint was ever registered (no middleware attached).
func (i *Instance) HTTPSnapshot() *HTTPStatus {
	i.http.mu.Lock()
	eps := make([]*httpEndpoint, 0, len(i.http.endpoints))
	for _, ep := range i.http.endpoints {
		eps = append(eps, ep)
	}
	workers := i.http.allocated
	i.http.mu.Unlock()
	if len(eps) == 0 {
		return nil
	}
	out := &HTTPStatus{Workers: workers}
	for _, ep := range eps {
		row := HTTPEndpointStatus{Endpoint: ep.name, Requests: ep.requests.Load()}
		row.SumMs = float64(ep.sumNs.Load()) / 1e6
		var cum int64
		for k, bound := range httpBucketBoundsNs {
			cum += ep.buckets[k].Load()
			row.Buckets = append(row.Buckets, HTTPBucket{LeMs: float64(bound) / 1e6, Count: cum})
		}
		ep.mu.Lock()
		n := min(ep.written, httpLatencyRing)
		window := append([]int64(nil), ep.ring[:n]...)
		ep.mu.Unlock()
		if n > 0 {
			sort.Slice(window, func(a, b int) bool { return window[a] < window[b] })
			row.P50Ms = float64(quantileOf(window, 0.50)) / 1e6
			row.P99Ms = float64(quantileOf(window, 0.99)) / 1e6
		}
		row.TotalFunctions = len(ep.funcIDs)
		for _, id := range ep.funcIDs {
			if !i.FunctionActive(id) {
				continue
			}
			row.ActiveFunctions++
			if i.FunctionStride(id) > 1 {
				row.DemotedFunctions++
			}
		}
		out.Requests += row.Requests
		out.Endpoints = append(out.Endpoints, row)
	}
	sort.Slice(out.Endpoints, func(a, b int) bool { return out.Endpoints[a].Endpoint < out.Endpoints[b].Endpoint })
	return out
}

// quantileOf reads the q-quantile from an already sorted window.
func quantileOf(sorted []int64, q float64) int64 {
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
