package capi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"

	"capi/internal/dyncapi"
	"capi/internal/mpi"
	"capi/internal/obj"
	"capi/internal/scorep"
	"capi/internal/talp"
	"capi/internal/trace"
	"capi/internal/xray"
)

// The measurement-backend extension point. The paper's architecture (§V-C)
// decouples the instrumentation layer from the measurement system behind a
// generic enter/exit interface; this file makes that decoupling a public,
// *open* API: backends are named entries in a registry, RunOptions selects
// them by name (one or several — a fan-out mux feeds every event to each),
// and every backend reports through the same self-describing envelope.

// Aliases so backend implementations outside this package can name the
// event-layer types without importing internal packages.
type (
	// ThreadCtx is the executing context an event carries (rank + clock).
	ThreadCtx = xray.ThreadCtx
	// ResolvedFunc is one instrumentable function as the runtime sees it.
	ResolvedFunc = dyncapi.ResolvedFunc
	// EventBackend is the hot-path event sink the DynCaPI handler
	// dispatches into: Name, OnEnter, OnExit, InitCost. Implementations
	// may additionally implement dyncapi.Deselector to close dangling
	// state on live deselection.
	EventBackend = dyncapi.Backend
	// World is the simulated MPI world of one execution phase.
	World = mpi.World
	// Process is the loaded process image of a started instance.
	Process = obj.Process
	// BackendSwapReport summarizes one live backend-set swap.
	BackendSwapReport = dyncapi.BackendSwapReport
)

// Report is the unified measurement-report envelope: every backend's
// end-of-run (or mid-phase) report self-describes with a kind tag and
// marshals itself to JSON, so consumers — Instance.Reports, the control
// plane's GET /v1/report — can carry reports of backends they have never
// heard of.
type Report interface {
	// Kind names the report type ("talp", "profile", "trace", …).
	Kind() string
	json.Marshaler
}

// JSONReport wraps any JSON-marshallable value as a Report. Custom backends
// can use it instead of hand-writing an envelope type.
type JSONReport struct {
	ReportKind string
	Value      any
}

// Kind implements Report.
func (r JSONReport) Kind() string { return r.ReportKind }

// MarshalJSON implements Report.
func (r JSONReport) MarshalJSON() ([]byte, error) { return json.Marshal(r.Value) }

// BackendConfig is everything a backend factory gets to build one backend
// instance for a starting (or live) run.
type BackendConfig struct {
	// Ranks is the simulated MPI world size of the run.
	Ranks int
	// Proc is the loaded process image, for address→symbol resolution.
	Proc *Process
	// World is the MPI world current at build time. Every later phase
	// delivers a fresh world through MeasurementBackend.StartPhase.
	World *World
	// EmulateTALPBug enables TALP's re-entry bug compat mode (§VI-B(b)).
	EmulateTALPBug bool
	// Trace tunes trace-style backends (ring size, retention, wrap); nil
	// uses defaults. Ranks is already filled in.
	Trace *TraceOptions
}

// MeasurementBackend is one measurement system attached to a live instance:
// the lifecycle face of the extension point. The hot path goes through
// Events() (no reflection, no map lookups per event); the phase lifecycle
// and reporting go through the interface.
type MeasurementBackend interface {
	// Name returns the registry name the backend was created under.
	Name() string
	// Events returns the event sink the DynCaPI handler dispatches into.
	// It must be stable for the backend's lifetime: per-phase state swaps
	// happen inside the sink (StartPhase), never by replacing it.
	Events() EventBackend
	// StartPhase attaches fresh per-phase measurement state; world is the
	// new phase's MPI world (rank clocks restarted at zero).
	StartPhase(world *World) error
	// Report returns the current measurement report, or nil when the
	// backend has none (the discarding "none" backend, or nothing measured
	// yet). It must be safe to call while a phase executes.
	Report() Report
}

// BackendFactory builds one MeasurementBackend instance for a run.
type BackendFactory func(cfg BackendConfig) (MeasurementBackend, error)

var (
	backendMu       sync.RWMutex
	backendRegistry = map[string]BackendFactory{}
)

// RegisterBackend adds a measurement backend to the registry under the given
// name, making it selectable via RunOptions.Backends (and every -backend
// flag that resolves through the registry). It panics on an empty name, a
// nil factory or a duplicate registration — registration happens in init
// functions, where a panic is a build-time mistake, not a runtime condition.
func RegisterBackend(name string, factory BackendFactory) {
	if name == "" {
		//capi:panic-ok registration runs in init functions; a bad name is a build-time mistake
		panic("capi: RegisterBackend with empty name")
	}
	if strings.ContainsAny(name, ", ") {
		//capi:panic-ok registration runs in init functions; a bad name is a build-time mistake
		panic(fmt.Sprintf("capi: RegisterBackend name %q must not contain commas or spaces", name))
	}
	if factory == nil {
		//capi:panic-ok registration runs in init functions; a nil factory is a build-time mistake
		panic(fmt.Sprintf("capi: RegisterBackend %q with nil factory", name))
	}
	backendMu.Lock()
	defer backendMu.Unlock()
	if _, dup := backendRegistry[name]; dup {
		//capi:panic-ok registration runs in init functions; a duplicate name is a build-time mistake
		panic(fmt.Sprintf("capi: backend %q registered twice", name))
	}
	backendRegistry[name] = factory
}

// RegisteredBackends returns the names of every registered measurement
// backend, sorted.
func RegisteredBackends() []string {
	backendMu.RLock()
	defer backendMu.RUnlock()
	names := make([]string, 0, len(backendRegistry))
	for name := range backendRegistry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func backendFactory(name string) (BackendFactory, bool) {
	backendMu.RLock()
	defer backendMu.RUnlock()
	f, ok := backendRegistry[name]
	return f, ok
}

// unknownBackendError is the shared fail-fast error for unregistered
// backend names: it lists what *is* registered so a typo'd -backend flag is
// a one-round-trip fix.
func unknownBackendError(name string) error {
	return fmt.Errorf("capi: unknown backend %q (registered: %s)",
		name, strings.Join(RegisteredBackends(), ", "))
}

// ValidateBackends checks every name against the registry and rejects
// duplicates (reports are keyed by name). An empty list is valid — it means
// the RunOptions.Backend shim (or the "none" default) decides.
func ValidateBackends(names []string) error {
	seen := make(map[string]bool, len(names))
	for _, name := range names {
		if _, ok := backendFactory(name); !ok {
			return unknownBackendError(name)
		}
		if seen[name] {
			return fmt.Errorf("capi: backend %q listed twice", name)
		}
		seen[name] = true
	}
	return nil
}

// ParseBackends splits a comma-separated backend list ("talp,extrae") and
// validates every name against the registry, failing fast with the list of
// registered names on an unknown one. It is the shared -backend flag parser
// of cmd/dyncapi, cmd/capi-serve and cmd/capi-bench.
func ParseBackends(list string) ([]string, error) {
	var names []string
	for _, part := range strings.Split(list, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		names = append(names, part)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("capi: empty backend list (registered: %s)",
			strings.Join(RegisteredBackends(), ", "))
	}
	if err := ValidateBackends(names); err != nil {
		return nil, err
	}
	return names, nil
}

// buildMeasurementBackends resolves names through the registry, builds one
// MeasurementBackend per name, wraps each in its panic barrier
// (guardedBackend — registry backends are untrusted code running inside
// the host's dispatch path) and wires the event path: the single backend's
// guarded sink directly, or a Mux fanning out to all of them (in list
// order) when several are attached.
func buildMeasurementBackends(names []string, cfg BackendConfig, gopts dyncapi.GuardOptions) ([]MeasurementBackend, dyncapi.Backend, error) {
	if err := ValidateBackends(names); err != nil {
		return nil, nil, err
	}
	backends := make([]MeasurementBackend, 0, len(names))
	for _, name := range names {
		factory, _ := backendFactory(name)
		mb, err := factory(cfg)
		if err != nil {
			return nil, nil, fmt.Errorf("capi: building backend %q: %w", name, err)
		}
		if mb == nil || mb.Events() == nil {
			return nil, nil, fmt.Errorf("capi: backend %q factory returned no event sink", name)
		}
		backends = append(backends, newGuardedBackend(mb, gopts))
	}
	if len(backends) == 1 {
		return backends, backends[0].Events(), nil
	}
	sinks := make([]dyncapi.Backend, len(backends))
	for i, mb := range backends {
		sinks[i] = mb.Events()
	}
	return backends, dyncapi.NewMux(sinks...), nil
}

// The four built-in backends self-register, exactly like a third-party
// backend would.
func init() {
	RegisterBackend(string(BackendNone), newNoneBackend)
	RegisterBackend(string(BackendTALP), newTALPBackend)
	RegisterBackend(string(BackendScoreP), newScorePBackend)
	RegisterBackend(string(BackendExtrae), newExtraeBackend)
}

// noneBackend is the discarding cyg-profile interface: events are dispatched
// and dropped, no report is produced (overhead studies).
type noneBackend struct {
	ev *dyncapi.CygBackend
}

func newNoneBackend(BackendConfig) (MeasurementBackend, error) {
	return &noneBackend{ev: &dyncapi.CygBackend{}}, nil
}

func (b *noneBackend) Name() string            { return string(BackendNone) }
func (b *noneBackend) Events() EventBackend    { return b.ev }
func (b *noneBackend) StartPhase(*World) error { return nil }
func (b *noneBackend) Report() Report          { return nil }

// talpBackend records POP parallel-efficiency metrics per region. Each
// phase gets a fresh monitor over the phase's world.
type talpBackend struct {
	ev  *dyncapi.TALPBackend
	bug bool

	mu  sync.Mutex
	mon *talp.Monitor
}

func newTALPBackend(cfg BackendConfig) (MeasurementBackend, error) {
	mon := talp.New(cfg.World, talp.Options{EmulateReentryBug: cfg.EmulateTALPBug})
	return &talpBackend{ev: dyncapi.NewTALPBackend(mon), bug: cfg.EmulateTALPBug, mon: mon}, nil
}

func (b *talpBackend) Name() string         { return string(BackendTALP) }
func (b *talpBackend) Events() EventBackend { return b.ev }

func (b *talpBackend) StartPhase(world *World) error {
	mon := talp.New(world, talp.Options{EmulateReentryBug: b.bug})
	b.mu.Lock()
	b.mon = mon
	b.mu.Unlock()
	b.ev.Reset(mon)
	return nil
}

func (b *talpBackend) Report() Report {
	if rep := b.talpReport(); rep != nil {
		return talpEnvelope{rep}
	}
	return nil
}

func (b *talpBackend) talpReport() *talp.Report {
	b.mu.Lock()
	mon := b.mon
	b.mu.Unlock()
	if mon == nil {
		return nil
	}
	return mon.Report()
}

// talpEnvelope adapts talp.Report (a WriteJSON writer) to the envelope.
type talpEnvelope struct{ r *talp.Report }

func (e talpEnvelope) Kind() string { return "talp" }

func (e talpEnvelope) MarshalJSON() ([]byte, error) {
	var buf bytes.Buffer
	if err := e.r.WriteJSON(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// scorepBackend records call-path profiles. The resolver (with the DSO
// symbols DynCaPI injected) persists across phases; the measurement is
// fresh per phase.
type scorepBackend struct {
	ev    *dyncapi.ScorePBackend
	ranks int

	mu   sync.Mutex
	meas *scorep.Measurement
}

func newScorePBackend(cfg BackendConfig) (MeasurementBackend, error) {
	m, err := scorep.New(scorep.Options{Ranks: cfg.Ranks})
	if err != nil {
		return nil, err
	}
	return &scorepBackend{
		ev:    dyncapi.NewScorePBackend(m, scorep.NewResolverFromExecutable(cfg.Proc)),
		ranks: cfg.Ranks,
		meas:  m,
	}, nil
}

func (b *scorepBackend) Name() string         { return string(BackendScoreP) }
func (b *scorepBackend) Events() EventBackend { return b.ev }

func (b *scorepBackend) StartPhase(*World) error {
	m, err := scorep.New(scorep.Options{Ranks: b.ranks})
	if err != nil {
		return err
	}
	b.mu.Lock()
	b.meas = m
	b.mu.Unlock()
	b.ev.Reset(m)
	return nil
}

func (b *scorepBackend) Report() Report {
	if p := b.profile(); p != nil {
		return JSONReport{ReportKind: "profile", Value: p}
	}
	return nil
}

func (b *scorepBackend) profile() *scorep.Profile {
	b.mu.Lock()
	m := b.meas
	b.mu.Unlock()
	if m == nil {
		return nil
	}
	return m.Profile()
}

// extraeBackend records a per-rank sharded event trace with a merged
// end-of-run timeline. Each phase gets a fresh buffer.
type extraeBackend struct {
	ev   *dyncapi.ExtraeBackend
	opts trace.Options

	mu  sync.Mutex
	buf *trace.Buffer
}

func newExtraeBackend(cfg BackendConfig) (MeasurementBackend, error) {
	opts := trace.Options{}
	if cfg.Trace != nil {
		opts = *cfg.Trace
	}
	opts.Ranks = cfg.Ranks
	buf, err := trace.New(opts)
	if err != nil {
		return nil, err
	}
	return &extraeBackend{ev: dyncapi.NewExtraeBackend(buf), opts: opts, buf: buf}, nil
}

func (b *extraeBackend) Name() string         { return string(BackendExtrae) }
func (b *extraeBackend) Events() EventBackend { return b.ev }

func (b *extraeBackend) StartPhase(*World) error {
	buf, err := trace.New(b.opts)
	if err != nil {
		return err
	}
	b.mu.Lock()
	b.buf = buf
	b.mu.Unlock()
	b.ev.Reset(buf)
	return nil
}

func (b *extraeBackend) Report() Report {
	if rep := b.traceReport(); rep != nil {
		return JSONReport{ReportKind: "trace", Value: rep}
	}
	return nil
}

func (b *extraeBackend) traceReport() *trace.Report {
	b.mu.Lock()
	buf := b.buf
	b.mu.Unlock()
	if buf == nil {
		return nil
	}
	return buf.Report()
}
