package capi

// Ephemeral probes: a selection or sampling override installed with a TTL
// auto-reverts to the pre-override snapshot when the TTL expires — the
// Diagnose library's "probes have a lifespan" promise. Expiry is delivered
// as a perfectly ordinary Reconfigure/SetSampling (same locks, same
// accounting, same SSE visibility), driven by a single timer goroutine
// that exists only while a revert is pending: deadlines are monotonic
// (time.Time retains the monotonic reading), and when both a select and a
// sampling TTL are pending the goroutine sleeps until the earlier one.
//
// Composition with manual control: an explicit Reconfigure/SetSampling
// landing before expiry *cancels* the pending revert — the newest explicit
// state wins and becomes the base a later TTL'd override reverts to. Two
// overlapping TTL'd overrides coalesce: the second keeps the *original*
// base (the last explicit state), so expiry never reverts to another
// ephemeral override. The adapt controller narrows the selection through
// the runtime directly, not through Instance.Reconfigure, so controller
// decisions never count as the explicit base — a TTL'd override therefore
// does not fight the ladder: expiry restores the last explicit selection
// and the controller re-narrows from there if pressure persists.

import (
	"errors"
	"fmt"
	"maps"
	"sync"
	"time"

	"capi/internal/ic"
)

// ErrNoTTLBase is returned by ReconfigureTTL on an instance started with
// PatchAll that was never explicitly selected: there is no base selection
// an ephemeral override could revert to.
var ErrNoTTLBase = errors.New("capi: ttl'd selection needs a base to revert to (instance started with PatchAll and never explicitly selected)")

// ttlKind distinguishes the two pending-revert slots.
type ttlKind int

const (
	ttlSelect ttlKind = iota
	ttlSampling
)

// pendingRevert is one scheduled auto-revert.
type pendingRevert struct {
	deadline     time.Time // monotonic
	baseIC       *ic.Config
	baseSampling SamplingOptions
}

// ttlState is the ephemeral-probe scheduler embedded in Instance. Its
// mutex is independent of Instance.mu; the timer goroutine only runs while
// a revert is pending.
type ttlState struct {
	mu sync.Mutex
	// wake nudges the timer goroutine to recompute its deadline (schedule
	// changes, cancellations, shutdown). Buffered so nudges never block.
	wake chan struct{}

	//capi:guardedby mu
	sel *pendingRevert // pending selection revert
	//capi:guardedby mu
	smp *pendingRevert // pending sampling revert
	//capi:guardedby mu
	loopLive bool
	//capi:guardedby mu
	closed bool
	//capi:guardedby mu
	notify func(TTLExpiry)
	// userIC / lastSampling are the explicit base snapshots a TTL'd
	// override reverts to: the last selection applied through
	// Start/Reconfigure and the last table applied through
	// RunOptions.Sampling/SetSampling (zero value = cleared table).
	//capi:guardedby mu
	userIC *ic.Config
	//capi:guardedby mu
	lastSampling SamplingOptions
	//capi:guardedby mu
	scheduled int64
	//capi:guardedby mu
	expired int64
	//capi:guardedby mu
	canceled int64
}

// TTLExpiry describes one delivered auto-revert, passed to the function
// registered with Instance.SetTTLNotify (the control plane's SSE "expired"
// event). Exactly one of Report/Sampling is set, matching Kind.
type TTLExpiry struct {
	// Kind is "select" or "sampling".
	Kind string `json:"kind"`
	// Report is the revert's ReconfigReport (Kind "select").
	Report *ReconfigReport `json:"report,omitempty"`
	// Sampling is the restored table's snapshot (Kind "sampling").
	Sampling *SamplingSnapshot `json:"sampling,omitempty"`
}

// TTLStatus is the scheduler's point-in-time state, surfaced in
// InstanceStatus and as capi_ttl_* Prometheus series.
type TTLStatus struct {
	// SelectPending / SamplingPending report a scheduled revert;
	// the *RemainingSeconds fields count down to it.
	SelectPending            bool    `json:"selectPending"`
	SelectRemainingSeconds   float64 `json:"selectRemainingSeconds,omitempty"`
	SamplingPending          bool    `json:"samplingPending"`
	SamplingRemainingSeconds float64 `json:"samplingRemainingSeconds,omitempty"`
	// Scheduled counts every TTL ever accepted; Expired the reverts
	// delivered; Canceled the pending reverts an explicit select/sampling
	// call superseded.
	Scheduled int64 `json:"scheduled"`
	Expired   int64 `json:"expired"`
	Canceled  int64 `json:"canceled"`
}

// ReconfigureTTL applies a selection like Reconfigure and schedules an
// auto-revert: after ttl the instance reverts to the last *explicit*
// selection (Start's, or the most recent Reconfigure's). A pending revert
// is coalesced — a second TTL'd select keeps the original base and moves
// the deadline. The revert is delivered as a normal Reconfigure and
// announced through SetTTLNotify. It fails on an instance started with
// PatchAll and never explicitly selected (there is no base to revert to).
func (i *Instance) ReconfigureTTL(sel *Selection, ttl time.Duration) (ReconfigReport, error) {
	if i.rt == nil {
		return ReconfigReport{}, fmt.Errorf("capi: instance is not instrumented")
	}
	if sel == nil || sel.IC == nil {
		return ReconfigReport{}, fmt.Errorf("capi: nil selection")
	}
	if ttl <= 0 {
		return ReconfigReport{}, fmt.Errorf("capi: ttl must be positive, got %v", ttl)
	}
	i.ttl.mu.Lock()
	base := i.ttl.userIC
	if i.ttl.sel != nil {
		base = i.ttl.sel.baseIC
	}
	i.ttl.mu.Unlock()
	if base == nil {
		return ReconfigReport{}, ErrNoTTLBase
	}
	rep, err := i.applySelection(sel.IC)
	if err != nil {
		return rep, err
	}
	i.scheduleRevert(ttlSelect, &pendingRevert{baseIC: base}, ttl)
	return rep, nil
}

// SetSamplingTTL installs a sampling table like SetSampling and schedules
// an auto-revert to the last explicit table (an empty table — full
// delivery — when none was ever installed). Coalescing and cancellation
// follow ReconfigureTTL.
func (i *Instance) SetSamplingTTL(cfg SamplingOptions, ttl time.Duration) error {
	if i.rt == nil {
		return fmt.Errorf("capi: instance is not instrumented")
	}
	if ttl <= 0 {
		return fmt.Errorf("capi: ttl must be positive, got %v", ttl)
	}
	i.ttl.mu.Lock()
	base := copySamplingConfig(i.ttl.lastSampling)
	if i.ttl.smp != nil {
		base = i.ttl.smp.baseSampling
	}
	i.ttl.mu.Unlock()
	if err := i.applySampling(cfg); err != nil {
		return err
	}
	i.scheduleRevert(ttlSampling, &pendingRevert{baseSampling: base}, ttl)
	return nil
}

// SetTTLNotify registers fn to be called (on the timer goroutine) for
// every delivered auto-revert. Pass nil to unregister.
func (i *Instance) SetTTLNotify(fn func(TTLExpiry)) {
	i.ttl.mu.Lock()
	i.ttl.notify = fn
	i.ttl.mu.Unlock()
}

// TTLStatus returns the scheduler's current state.
func (i *Instance) TTLStatus() TTLStatus { return i.ttlStatus() }

func (i *Instance) ttlStatus() TTLStatus {
	now := time.Now()
	i.ttl.mu.Lock()
	defer i.ttl.mu.Unlock()
	st := TTLStatus{
		Scheduled: i.ttl.scheduled,
		Expired:   i.ttl.expired,
		Canceled:  i.ttl.canceled,
	}
	if p := i.ttl.sel; p != nil {
		st.SelectPending = true
		st.SelectRemainingSeconds = maxSeconds(p.deadline.Sub(now))
	}
	if p := i.ttl.smp; p != nil {
		st.SamplingPending = true
		st.SamplingRemainingSeconds = maxSeconds(p.deadline.Sub(now))
	}
	return st
}

func maxSeconds(d time.Duration) float64 {
	if d < 0 {
		return 0
	}
	return d.Seconds()
}

// scheduleRevert installs p into the kind's slot (keeping an existing
// pending revert's base — overlap coalesces to the original snapshot) and
// makes sure the timer goroutine runs.
func (i *Instance) scheduleRevert(kind ttlKind, p *pendingRevert, ttl time.Duration) {
	p.deadline = time.Now().Add(ttl)
	i.ttl.mu.Lock()
	switch kind {
	case ttlSelect:
		i.ttl.sel = p
	case ttlSampling:
		i.ttl.smp = p
	}
	i.ttl.scheduled++
	start := false
	if !i.ttl.loopLive && !i.ttl.closed {
		i.ttl.loopLive = true
		start = true
	}
	i.ttl.mu.Unlock()
	if start {
		go i.ttlLoop()
	} else {
		i.ttlWake()
	}
}

// ttlExplicitSelect records an explicit selection as the new revert base
// and cancels a pending selection revert — the newest explicit select
// wins.
func (i *Instance) ttlExplicitSelect(cfg *ic.Config) {
	i.ttl.mu.Lock()
	i.ttl.userIC = cfg
	if i.ttl.sel != nil {
		i.ttl.sel = nil
		i.ttl.canceled++
	}
	i.ttl.mu.Unlock()
	i.ttlWake()
}

// ttlExplicitSampling records an explicit table as the new revert base and
// cancels a pending sampling revert.
func (i *Instance) ttlExplicitSampling(cfg SamplingOptions) {
	i.ttl.mu.Lock()
	i.ttl.lastSampling = copySamplingConfig(cfg)
	if i.ttl.smp != nil {
		i.ttl.smp = nil
		i.ttl.canceled++
	}
	i.ttl.mu.Unlock()
	i.ttlWake()
}

// ttlWake nudges the timer goroutine without blocking.
func (i *Instance) ttlWake() {
	select {
	case i.ttl.wake <- struct{}{}:
	default:
	}
}

// ttlStop shuts the scheduler down (Close): pending reverts are dropped
// undelivered and the timer goroutine, if any, exits at its next wake.
func (i *Instance) ttlStop() {
	i.ttl.mu.Lock()
	i.ttl.closed = true
	i.ttl.sel = nil
	i.ttl.smp = nil
	i.ttl.mu.Unlock()
	i.ttlWake()
}

// ttlLoop is the single timer goroutine: it sleeps until the earliest
// pending deadline (re-armed on every wake nudge) and exits as soon as
// nothing is pending — an instance that never uses TTLs never runs it.
func (i *Instance) ttlLoop() {
	for {
		i.ttl.mu.Lock()
		if i.ttl.closed || (i.ttl.sel == nil && i.ttl.smp == nil) {
			i.ttl.loopLive = false
			i.ttl.mu.Unlock()
			return
		}
		var next time.Time
		if p := i.ttl.sel; p != nil {
			next = p.deadline
		}
		if p := i.ttl.smp; p != nil && (next.IsZero() || p.deadline.Before(next)) {
			next = p.deadline
		}
		i.ttl.mu.Unlock()
		if d := time.Until(next); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-i.ttl.wake:
				t.Stop()
				continue // schedule changed: recompute (or exit)
			}
		}
		i.deliverExpiries()
	}
}

// deliverExpiries pops every due revert and applies it outside the TTL
// lock, through the same internal apply helpers the explicit calls use —
// but without the cancel step, so delivering a revert never cancels the
// other slot's pending revert.
func (i *Instance) deliverExpiries() {
	now := time.Now()
	var sel, smp *pendingRevert
	i.ttl.mu.Lock()
	if p := i.ttl.sel; p != nil && !p.deadline.After(now) {
		sel, i.ttl.sel = p, nil
		i.ttl.expired++
	}
	if p := i.ttl.smp; p != nil && !p.deadline.After(now) {
		smp, i.ttl.smp = p, nil
		i.ttl.expired++
	}
	notify := i.ttl.notify
	i.ttl.mu.Unlock()
	if sel != nil {
		if rep, err := i.applySelection(sel.baseIC); err == nil && notify != nil {
			notify(TTLExpiry{Kind: "select", Report: &rep})
		}
	}
	if smp != nil {
		if err := i.applySampling(smp.baseSampling); err == nil && notify != nil {
			snap := i.Sampling()
			notify(TTLExpiry{Kind: "sampling", Sampling: &snap})
		}
	}
}

// copySamplingConfig deep-copies a sampling table so a scheduled revert
// can never observe caller mutations of the original maps.
func copySamplingConfig(cfg SamplingOptions) SamplingOptions {
	out := SamplingOptions{}
	if cfg.Default != nil {
		d := *cfg.Default
		out.Default = &d
	}
	if len(cfg.Funcs) > 0 {
		out.Funcs = maps.Clone(cfg.Funcs)
	}
	if len(cfg.IDs) > 0 {
		out.IDs = maps.Clone(cfg.IDs)
	}
	return out
}
