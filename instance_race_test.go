package capi_test

import (
	"sync"
	"testing"

	capi "capi"
)

const quickCoarseSpec = `!import("mpi.capi")
excluded = join(inSystemHeader(%%), inlineSpecified(%%))
coarse(subtract(%mpi_comm, %excluded))
`

// TestInstanceConcurrentControlPlane is the regression test for the
// instance-level data races the HTTP control plane depends on: Run used to
// swap mon/meas/traceBuf and bill pendingNs unsynchronized, and TraceReport
// documented "must not be called while a Run is executing". Here two
// goroutines hammer the instance — one flipping the selection back and
// forth with Reconfigure, one scraping Status and the live reports — while
// phases execute. Run with -race.
func TestInstanceConcurrentControlPlane(t *testing.T) {
	backends := []capi.Backend{capi.BackendTALP, capi.BackendScoreP, capi.BackendExtrae}
	for _, backend := range backends {
		t.Run(string(backend), func(t *testing.T) {
			s := newQuickSession(t)
			wide, err := s.Select(quickSpec)
			if err != nil {
				t.Fatal(err)
			}
			narrow, err := s.Select(quickCoarseSpec)
			if err != nil {
				t.Fatal(err)
			}
			inst, err := s.Start(wide, capi.RunOptions{Backend: backend, Ranks: 2})
			if err != nil {
				t.Fatal(err)
			}

			done := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(2)
			go func() {
				defer wg.Done()
				for j := 0; ; j++ {
					select {
					case <-done:
						return
					default:
					}
					sel := narrow
					if j%2 == 1 {
						sel = wide
					}
					if _, err := inst.Reconfigure(sel); err != nil {
						t.Errorf("reconfigure: %v", err)
						return
					}
				}
			}()
			go func() {
				defer wg.Done()
				for {
					select {
					case <-done:
						return
					default:
					}
					st := inst.Status()
					if !st.Instrumented || st.Ranks != 2 {
						t.Errorf("status = %+v", st)
						return
					}
					inst.TraceReport()
					inst.TALPReport()
					inst.Profile()
					inst.ActiveFunctionNames()
					inst.DroppedEvents()
					inst.SyntheticExits()
				}
			}()

			for phase := 0; phase < 3; phase++ {
				if _, err := inst.Run(); err != nil {
					t.Fatal(err)
				}
			}
			close(done)
			wg.Wait()

			st := inst.Status()
			if st.Runs != 3 || st.Running {
				t.Fatalf("final status = %+v", st)
			}
			if st.Reconfigs == 0 {
				t.Fatal("no reconfiguration ever applied")
			}
			if st.Events == 0 {
				t.Fatal("no events accumulated")
			}
			if st.DroppedUnpatched != 0 {
				t.Fatalf("spurious sled hits: %d", st.DroppedUnpatched)
			}
		})
	}
}

// TestInstanceConcurrentRunsSerialize: overlapping Run calls must not
// interleave phases — they queue on the instance's run lock.
func TestInstanceConcurrentRunsSerialize(t *testing.T) {
	s := newQuickSession(t)
	sel, err := s.Select(quickSpec)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := s.Start(sel, capi.RunOptions{Backend: capi.BackendTALP, Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	const phases = 4
	var wg sync.WaitGroup
	errs := make(chan error, phases)
	for p := 0; p < phases; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := inst.Run()
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := inst.Runs(); got != phases {
		t.Fatalf("runs = %d, want %d", got, phases)
	}
}
