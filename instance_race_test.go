package capi_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	capi "capi"
)

const quickCoarseSpec = `!import("mpi.capi")
excluded = join(inSystemHeader(%%), inlineSpecified(%%))
coarse(subtract(%mpi_comm, %excluded))
`

// TestInstanceConcurrentControlPlane is the regression test for the
// instance-level data races the HTTP control plane depends on: Run used to
// swap mon/meas/traceBuf and bill pendingNs unsynchronized, and TraceReport
// documented "must not be called while a Run is executing". Here two
// goroutines hammer the instance — one flipping the selection back and
// forth with Reconfigure, one scraping Status and the live reports — while
// phases execute. Run with -race.
func TestInstanceConcurrentControlPlane(t *testing.T) {
	cases := []struct {
		name     string
		backends []string
	}{
		{"talp", []string{"talp"}},
		{"scorep", []string{"scorep"}},
		{"extrae", []string{"extrae"}},
		// The multi-backend fan-out under the same hammering: every event
		// reaches all three, reports scrape mid-phase per backend.
		{"talp,scorep,extrae", []string{"talp", "scorep", "extrae"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := newQuickSession(t)
			wide, err := s.Select(quickSpec)
			if err != nil {
				t.Fatal(err)
			}
			narrow, err := s.Select(quickCoarseSpec)
			if err != nil {
				t.Fatal(err)
			}
			inst, err := s.Start(wide, capi.RunOptions{Backends: c.backends, Ranks: 2})
			if err != nil {
				t.Fatal(err)
			}

			done := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(2)
			go func() {
				defer wg.Done()
				for j := 0; ; j++ {
					select {
					case <-done:
						return
					default:
					}
					sel := narrow
					if j%2 == 1 {
						sel = wide
					}
					if _, err := inst.Reconfigure(sel); err != nil {
						t.Errorf("reconfigure: %v", err)
						return
					}
				}
			}()
			go func() {
				defer wg.Done()
				for {
					select {
					case <-done:
						return
					default:
					}
					st := inst.Status()
					if !st.Instrumented || st.Ranks != 2 {
						t.Errorf("status = %+v", st)
						return
					}
					if len(st.Backends) != len(c.backends) {
						t.Errorf("status backends = %v, want %v", st.Backends, c.backends)
						return
					}
					inst.TraceReport()
					inst.TALPReport()
					inst.Profile()
					inst.Reports()
					inst.ActiveFunctionNames()
					inst.DroppedEvents()
					inst.SyntheticExits()
					inst.SyntheticExitsByBackend()
				}
			}()

			for phase := 0; phase < 3; phase++ {
				if _, err := inst.Run(); err != nil {
					t.Fatal(err)
				}
			}
			close(done)
			wg.Wait()

			st := inst.Status()
			if st.Runs != 3 || st.Running {
				t.Fatalf("final status = %+v", st)
			}
			if st.Reconfigs == 0 {
				t.Fatal("no reconfiguration ever applied")
			}
			if st.Events == 0 {
				t.Fatal("no events accumulated")
			}
			if st.DroppedUnpatched != 0 {
				t.Fatalf("spurious sled hits: %d", st.DroppedUnpatched)
			}
			// The per-backend synthetic-exit breakdown always sums to the
			// total, whichever backends closed state.
			var sum int64
			for _, n := range st.SyntheticExitsByBackend {
				sum += n
			}
			if sum != st.SyntheticExits {
				t.Fatalf("per-backend exits %v sum to %d, total says %d",
					st.SyntheticExitsByBackend, sum, st.SyntheticExits)
			}
		})
	}
}

// TestInstanceMultiBackendSyntheticExitsUnderRace is the fan-out side of the
// dangling-enter regression: phases execute on a talp+scorep+extrae mux
// while another goroutine keeps shrinking and widening the selection.
// Every mid-phase shrink catches ranks inside deselected functions, and the
// synthetic exits that close them must be delivered to — and counted for —
// *every* Deselector backend in the mux (extrae keeps no open state and
// must stay absent). Run with -race.
func TestInstanceMultiBackendSyntheticExitsUnderRace(t *testing.T) {
	// A long-enough LULESH phase that mid-phase shrinks reliably catch
	// ranks inside deselected communication functions (the quickstart
	// phases are over before a reconfigure can land without -race).
	s, err := capi.NewSession(capi.Lulesh(capi.LuleshOptions{Timesteps: 6000}),
		capi.SessionOptions{OptLevel: 3})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := s.Select(quickSpec)
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := s.Select(quickCoarseSpec)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := s.Start(wide, capi.RunOptions{Backends: []string{"talp", "scorep", "extrae"}, Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}

	reconfigure := func(sel *capi.Selection) capi.ReconfigReport {
		t.Helper()
		rep, err := inst.Reconfigure(sel)
		if err != nil {
			t.Fatalf("reconfigure: %v", err)
		}
		// Per-reconfiguration invariant: the breakdown sums to the total.
		sum := 0
		for _, n := range rep.SyntheticExitsByBackend {
			sum += n
		}
		if sum != rep.SyntheticExits {
			t.Fatalf("reconfig %d: per-backend %v sums to %d, total %d",
				rep.Seq, rep.SyntheticExitsByBackend, sum, rep.SyntheticExits)
		}
		return rep
	}

	satisfied := func() bool {
		by := inst.SyntheticExitsByBackend()
		return by["talp"] > 0 && by["scorep"] > 0
	}

	// Run phases; while one executes, keep shrinking and widening the
	// selection until both stateful backends have closed dangling enters.
	const maxPhases = 5
	for phase := 0; phase < maxPhases && !satisfied(); phase++ {
		phaseDone := make(chan error, 1)
		go func() {
			_, err := inst.Run()
			phaseDone <- err
		}()
		deadline := time.After(60 * time.Second)
		for running := false; !running; {
			select {
			case err := <-phaseDone:
				if err != nil {
					t.Fatal(err)
				}
				phaseDone = nil // phase outran us; try the next one
				running = true
			case <-deadline:
				t.Fatal("phase never started")
			default:
				running = inst.Status().Running
			}
		}
		for phaseDone != nil {
			select {
			case err := <-phaseDone:
				if err != nil {
					t.Fatal(err)
				}
				phaseDone = nil
			default:
				reconfigure(narrow)
				reconfigure(wide)
				if satisfied() {
					// Both backends provably closed state; drain the phase.
					if err := <-phaseDone; err != nil {
						t.Fatal(err)
					}
					phaseDone = nil
				}
			}
		}
	}

	by := inst.SyntheticExitsByBackend()
	if by["talp"] == 0 || by["scorep"] == 0 {
		t.Fatalf("synthetic exits not delivered to every mux backend: %v (total %d)",
			by, inst.SyntheticExits())
	}
	if _, ok := by["extrae"]; ok {
		t.Fatalf("extrae (no open state) appears in the breakdown: %v", by)
	}
	var sum int64
	for _, n := range by {
		sum += n
	}
	if sum != inst.SyntheticExits() {
		t.Fatalf("breakdown %v sums to %d, total says %d", by, sum, inst.SyntheticExits())
	}
	// All three backends measured the same phases from one event stream.
	reports := inst.Reports()
	for _, name := range []string{"talp", "scorep", "extrae"} {
		if reports[name] == nil {
			t.Fatalf("backend %q produced no report (have %d)", name, len(reports))
		}
	}
}

// TestInstanceConcurrentRunsSerialize: overlapping Run calls must not
// interleave phases — they queue on the instance's run lock.
func TestInstanceConcurrentRunsSerialize(t *testing.T) {
	s := newQuickSession(t)
	sel, err := s.Select(quickSpec)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := s.Start(sel, capi.RunOptions{Backend: capi.BackendTALP, Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	const phases = 4
	var wg sync.WaitGroup
	errs := make(chan error, phases)
	for p := 0; p < phases; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := inst.Run()
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := inst.Runs(); got != phases {
		t.Fatalf("runs = %d, want %d", got, phases)
	}
}

// raceCountBackend is a registered measurement backend that counts every
// event it is delivered. The factory returns a process-wide singleton so
// the counts survive live backend-set swaps (SetBackends builds fresh
// instances per name) — which is exactly what the conservation assertion
// below needs: every delivered enter, across every swap, lands in one
// counter.
type raceCountBackend struct {
	enters, exits atomic.Int64
}

func (b *raceCountBackend) Name() string { return "race-count" }
func (b *raceCountBackend) OnEnter(tc capi.ThreadCtx, fn *capi.ResolvedFunc) {
	b.enters.Add(1)
}
func (b *raceCountBackend) OnExit(tc capi.ThreadCtx, fn *capi.ResolvedFunc) {
	b.exits.Add(1)
}
func (b *raceCountBackend) InitCost(int) int64           { return 0 }
func (b *raceCountBackend) Events() capi.EventBackend    { return b }
func (b *raceCountBackend) StartPhase(*capi.World) error { return nil }
func (b *raceCountBackend) Report() capi.Report          { return nil }

var raceCounter = &raceCountBackend{}

func init() {
	capi.RegisterBackend("race-count", func(capi.BackendConfig) (capi.MeasurementBackend, error) {
		return raceCounter, nil
	})
}

// TestInstanceSamplingConservationUnderRace is the sampling stress test:
// phases execute while four goroutines hammer the instance — one cycling
// the sampling table (live rate changes, min-duration policies, clears),
// one flipping the selection with Reconfigure, one swapping the backend
// set, one scraping status/reports. Run with -race.
//
// The acceptance invariant: across every live rate change, the sampler's
// drop/sample counters are exactly conserved —
//
//	enters == delivered + sampled-out + suppressed + collapsed
//
// — and "delivered" is verified against an *independent* count: the
// registered race-count backend saw exactly the delivered enters, no more,
// no fewer.
func TestInstanceSamplingConservationUnderRace(t *testing.T) {
	raceCounter.enters.Store(0)
	raceCounter.exits.Store(0)
	s, err := capi.NewSession(capi.Lulesh(capi.LuleshOptions{Timesteps: 3000}),
		capi.SessionOptions{OptLevel: 3})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := s.Select(quickSpec)
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := s.Select(quickCoarseSpec)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := s.Start(wide, capi.RunOptions{
		Backends: []string{"race-count"},
		Ranks:    2,
		Sampling: &capi.SamplingOptions{Default: &capi.SamplingPolicy{Stride: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(4)
	go func() { // live rate changes
		defer wg.Done()
		tables := []capi.SamplingOptions{
			{Default: &capi.SamplingPolicy{Stride: 1}},
			{Default: &capi.SamplingPolicy{Stride: 8}},
			{Default: &capi.SamplingPolicy{Stride: 64, MinDurationNs: 500}},
			{Default: &capi.SamplingPolicy{MinDurationNs: 2000, CollapseRedundant: true}},
			{}, // clear: deliver everything, keep accounting
			{Default: &capi.SamplingPolicy{Stride: 3}}, // non-power-of-two
		}
		for j := 0; ; j++ {
			select {
			case <-done:
				return
			default:
			}
			if err := inst.SetSampling(tables[j%len(tables)]); err != nil {
				t.Errorf("SetSampling: %v", err)
				return
			}
			// Invalid tables must fail without mutating anything.
			if err := inst.SetSampling(capi.SamplingOptions{Default: &capi.SamplingPolicy{Stride: -1}}); err == nil {
				t.Error("negative stride accepted")
				return
			}
		}
	}()
	go func() { // live re-selection
		defer wg.Done()
		for j := 0; ; j++ {
			select {
			case <-done:
				return
			default:
			}
			sel := narrow
			if j%2 == 1 {
				sel = wide
			}
			if _, err := inst.Reconfigure(sel); err != nil {
				t.Errorf("reconfigure: %v", err)
				return
			}
		}
	}()
	go func() { // live backend-set swaps (the singleton rides both sets)
		defer wg.Done()
		sets := [][]string{{"race-count"}, {"race-count", "extrae"}}
		for j := 0; ; j++ {
			select {
			case <-done:
				return
			default:
			}
			if _, err := inst.SetBackends(sets[j%2]); err != nil {
				t.Errorf("set backends: %v", err)
				return
			}
		}
	}()
	go func() { // scrapes
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			st := inst.Status()
			if st.Sampling != nil {
				c := st.Sampling.Counters
				// Mid-phase the published counters lag per class, so the
				// invariant is only asserted at quiescence below; here we
				// just exercise the concurrent read paths.
				_ = c
			}
			inst.Sampling()
			inst.Reports()
			inst.ActiveFunctionNames()
			inst.DroppedEvents()
		}
	}()

	for phase := 0; phase < 3; phase++ {
		if _, err := inst.Run(); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()

	st := inst.Status()
	if st.Runs != 3 || st.DroppedUnpatched != 0 {
		t.Fatalf("final status = %+v", st)
	}
	snap := inst.Sampling()
	c := snap.Counters
	if c.Enters == 0 || c.SampledEvents == 0 {
		t.Fatalf("stress run never sampled: %+v", c)
	}
	// (a) Exact conservation across every live rate change.
	if got := c.Delivered + c.SampledEvents + c.SuppressedPairs + c.CollapsedCalls; got != c.Enters {
		t.Fatalf("conservation broken: delivered %d + sampled %d + suppressed %d + collapsed %d = %d != enters %d",
			c.Delivered, c.SampledEvents, c.SuppressedPairs, c.CollapsedCalls, got, c.Enters)
	}
	// (b) "Delivered" is real: the counting backend saw exactly that many
	// enters — every pair the sampler dropped was dropped whole, every
	// pair it admitted arrived, across reconfigures and backend swaps.
	if got := raceCounter.enters.Load(); got != c.Delivered {
		t.Fatalf("backend saw %d enters, sampler says %d delivered", got, c.Delivered)
	}
	if raceCounter.exits.Load() == 0 {
		t.Fatal("no exits delivered at all")
	}
}
