module capi

go 1.24
