// Benchmarks regenerating the paper's evaluation artifacts. One benchmark
// family per table/figure:
//
//   - BenchmarkTable1Selection  — Table I (selection time per app × spec)
//   - BenchmarkTable2Overhead   — Table II (instrumented runs per variant)
//   - BenchmarkFig4PackedID     — Fig. 4 (packed ID encode/decode)
//   - BenchmarkFactsInit        — §VI-B DynCaPI initialization (resolution,
//     hidden-symbol handling, patching)
//   - BenchmarkAblation*        — design-choice ablations from DESIGN.md
//
// The workloads are scaled down (Scale, timesteps) so a full -bench=. pass
// stays in CI budgets; `cmd/capi-bench -scale 1.0` reproduces paper-scale
// counts. Shapes (who wins, by what factor) are scale-independent.
package capi_test

import (
	"testing"

	capi "capi"
	"capi/internal/callgraph"
	"capi/internal/compiler"
	"capi/internal/core"
	"capi/internal/dyncapi"
	"capi/internal/experiments"
	"capi/internal/ic"
	"capi/internal/metacg"
	"capi/internal/mpi"
	"capi/internal/workload"
	"capi/internal/xray"
	"capi/middleware"
)

// benchOpts keeps every benchmark iteration bounded.
var benchOpts = experiments.Options{
	Scale:           0.02,
	Ranks:           2,
	LuleshTimesteps: 10,
	OFTimesteps:     2,
	PCGIters:        4,
}

// BenchmarkTable1Selection regenerates Table I: one sub-benchmark per
// application × specification, timing the full selection pipeline
// (parse, evaluate, post-process) per iteration.
func BenchmarkTable1Selection(b *testing.B) {
	for _, prep := range []struct {
		name string
		fn   func(experiments.Options) (*experiments.AppBundle, error)
	}{
		{"lulesh", experiments.PrepareLulesh},
		{"openfoam", experiments.PrepareOpenFOAM},
	} {
		bundle, err := prep.fn(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		for _, spec := range experiments.SpecNames {
			b.Run(prep.name+"/"+spec, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					row, err := experiments.RunSelection(bundle, spec)
					if err != nil {
						b.Fatal(err)
					}
					if row.Selected == 0 {
						b.Fatal("empty selection")
					}
				}
			})
		}
	}
}

// BenchmarkTable2Overhead regenerates Table II: one sub-benchmark per
// application × backend × variant, executing the instrumented run per
// iteration and reporting the virtual overhead as a custom metric.
func BenchmarkTable2Overhead(b *testing.B) {
	for _, prep := range []struct {
		name string
		fn   func(experiments.Options) (*experiments.AppBundle, error)
	}{
		{"lulesh", experiments.PrepareLulesh},
		{"openfoam", experiments.PrepareOpenFOAM},
	} {
		bundle, err := prep.fn(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		van, err := experiments.RunVariant(bundle, experiments.BackendNone, experiments.VariantVanilla, nil, benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		vanSec := van.Row.TotalSeconds

		variants := []string{experiments.VariantInactive, experiments.VariantFull, "mpi", "kernels"}
		for _, backend := range []string{experiments.BackendTALP, experiments.BackendScoreP} {
			for _, variant := range variants {
				if variant == experiments.VariantInactive && backend != experiments.BackendTALP {
					continue // backend-independent; bench once
				}
				name := prep.name + "/" + backend + "/" + variant
				var cfg = (*capi.IC)(nil)
				if variant != experiments.VariantInactive && variant != experiments.VariantFull {
					row, err := experiments.RunSelection(bundle, variant)
					if err != nil {
						b.Fatal(err)
					}
					cfg = row.IC
				}
				b.Run(name, func(b *testing.B) {
					var overhead float64
					for i := 0; i < b.N; i++ {
						run, err := experiments.RunVariant(bundle, backend, variant, cfg, benchOpts)
						if err != nil {
							b.Fatal(err)
						}
						overhead = (run.Row.TotalSeconds - vanSec) / vanSec
					}
					b.ReportMetric(100*overhead, "overhead%")
				})
			}
		}
	}
}

// BenchmarkFig4PackedID measures the packed object/function ID encode and
// decode of Fig. 4 — the operation every dispatched event performs.
func BenchmarkFig4PackedID(b *testing.B) {
	b.Run("pack", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			obj, fn := uint8(i%255), uint32(i)%(1<<24)
			id, err := xray.PackID(obj, fn)
			if err != nil {
				b.Fatal(err)
			}
			// Object IDs ≥ 128 set the int32 sign bit — only the
			// round-trip is meaningful.
			if gotObj, gotFn := xray.UnpackID(id); gotObj != obj || gotFn != fn {
				b.Fatalf("roundtrip (%d,%d) -> %d -> (%d,%d)", obj, fn, id, gotObj, gotFn)
			}
		}
	})
	b.Run("unpack", func(b *testing.B) {
		id, _ := xray.PackID(7, 123456)
		for i := 0; i < b.N; i++ {
			obj, fn := xray.UnpackID(id)
			if obj != 7 || fn != 123456 {
				b.Fatal("roundtrip broken")
			}
		}
	})
}

// BenchmarkFactsInit measures DynCaPI initialization on the OpenFOAM case —
// function-ID resolution across 6 DSOs (with unresolvable hidden symbols)
// plus sled patching, the §VI-B(a) path and the dominant T_init component.
func BenchmarkFactsInit(b *testing.B) {
	bundle, err := experiments.PrepareOpenFOAM(benchOpts)
	if err != nil {
		b.Fatal(err)
	}
	row, err := experiments.RunSelection(bundle, "mpi")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		proc, err := bundle.Build.LoadProcess()
		if err != nil {
			b.Fatal(err)
		}
		xr, err := xray.NewRuntime(proc)
		if err != nil {
			b.Fatal(err)
		}
		rt, err := dyncapi.New(proc, xr, row.IC, &dyncapi.CygBackend{}, dyncapi.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if rt.Report().Patched == 0 {
			b.Fatal("nothing patched")
		}
	}
}

// BenchmarkAblationCoarse isolates the coarse selector (§V-D): the same
// openfoam mpi pipeline with and without the final coarse stage.
func BenchmarkAblationCoarse(b *testing.B) {
	bundle, err := experiments.PrepareOpenFOAM(benchOpts)
	if err != nil {
		b.Fatal(err)
	}
	for _, spec := range []string{"mpi", "mpi coarse"} {
		b.Run(spec, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.RunSelection(bundle, spec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationInliningCompensation isolates the §V-E post-pass by
// running the same pipeline with and without a symbol oracle.
func BenchmarkAblationInliningCompensation(b *testing.B) {
	p := workload.OpenFOAM(workload.OpenFOAMOptions{Scale: benchOpts.Scale, Timesteps: 2, PCGIters: 4})
	g := metacg.BuildWholeProgram(p, metacg.Options{})
	build, err := compiler.Compile(p, compiler.Options{XRay: true, OptLevel: workload.OpenFOAMOptLevel})
	if err != nil {
		b.Fatal(err)
	}
	src, err := experiments.SpecSource("mpi")
	if err != nil {
		b.Fatal(err)
	}
	for _, variant := range []struct {
		name string
		opts core.Options
	}{
		{"with-compensation", core.Options{Symbols: build}},
		{"without", core.Options{}},
	} {
		b.Run(variant.name, func(b *testing.B) {
			eng := core.NewEngine(g)
			for i := 0; i < b.N; i++ {
				if _, err := eng.RunSource(src, variant.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationRuntimeFilter compares patch-time selection (the
// paper's approach) against Score-P runtime filtering with every sled
// patched (§II-B: "the overhead of invoking the probe and cross-checking
// the filter list is retained").
func BenchmarkAblationRuntimeFilter(b *testing.B) {
	bundle, err := experiments.PrepareOpenFOAM(benchOpts)
	if err != nil {
		b.Fatal(err)
	}
	row, err := experiments.RunSelection(bundle, "kernels")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("patch-selected", func(b *testing.B) {
		var virtual float64
		for i := 0; i < b.N; i++ {
			run, err := experiments.RunVariant(bundle, experiments.BackendScoreP, "kernels", row.IC, benchOpts)
			if err != nil {
				b.Fatal(err)
			}
			virtual = run.Row.TotalSeconds
		}
		b.ReportMetric(virtual, "virtual-s")
	})
	b.Run("runtime-filter", func(b *testing.B) {
		var virtual float64
		for i := 0; i < b.N; i++ {
			run, err := experiments.RunRuntimeFiltered(bundle, row.IC, benchOpts)
			if err != nil {
				b.Fatal(err)
			}
			virtual = run.Row.TotalSeconds
		}
		b.ReportMetric(virtual, "virtual-s")
	})
}

// BenchmarkCallGraphConstruction measures the MetaCG whole-program build
// (Fig. 2 steps 3–4), the preparation-phase cost Table I's Time column sits
// on top of.
func BenchmarkCallGraphConstruction(b *testing.B) {
	p := workload.OpenFOAM(workload.OpenFOAMOptions{Scale: benchOpts.Scale, Timesteps: 2, PCGIters: 4})
	b.ResetTimer()
	var g *callgraph.Graph
	for i := 0; i < b.N; i++ {
		g = metacg.BuildWholeProgram(p, metacg.Options{})
	}
	b.ReportMetric(float64(g.Len()), "nodes")
}

// BenchmarkPatching measures the xray sled patch/unpatch cycle under
// mprotect over the executable and all DSOs (§V-A/B).
func BenchmarkPatching(b *testing.B) {
	bundle, err := experiments.PrepareOpenFOAM(benchOpts)
	if err != nil {
		b.Fatal(err)
	}
	proc, err := bundle.Build.LoadProcess()
	if err != nil {
		b.Fatal(err)
	}
	xr, err := xray.NewRuntime(proc)
	if err != nil {
		b.Fatal(err)
	}
	xr.SetHandler(func(tc xray.ThreadCtx, id int32, kind xray.EntryType) {})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := xr.PatchAll()
		if err != nil {
			b.Fatal(err)
		}
		if n == 0 {
			b.Fatal("nothing patched")
		}
		if _, err := xr.UnpatchAll(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDispatch compares event-dispatch throughput across measurement
// backends: one iteration is one enter/exit pair through xray.Dispatch, the
// DynCaPI handler and the backend. The ordering to expect — and the reason
// the extrae tracer shards its buffers per rank — is
//
//	none < extrae ≪ scorep < talp
//
// extrae's lock-free shard append stays within ~2× of the discarding
// cyg-profile baseline and far below Score-P's call-path aggregation, even
// though it retains every event.
func BenchmarkDispatch(b *testing.B) {
	for _, backend := range []string{
		experiments.BackendNone,
		experiments.BackendTALP,
		experiments.BackendScoreP,
		experiments.BackendExtrae,
	} {
		b.Run(backend, func(b *testing.B) {
			h, err := experiments.NewDispatchHarness(backend, nil)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.Dispatch(i)
			}
		})
	}
}

// BenchmarkDispatchMux1 isolates the mux fan-out's own cost: the same
// extrae backend dispatched directly and behind a mux of one. The delta is
// one slice iteration plus an interface call — the benchdiff vs_direct gate
// asserts it stays within the dispatch tolerance of the direct path.
func BenchmarkDispatchMux1(b *testing.B) {
	for _, backend := range []string{
		experiments.BackendExtrae,
		"mux:" + experiments.BackendExtrae,
	} {
		b.Run(backend, func(b *testing.B) {
			h, err := experiments.NewDispatchHarness(backend, nil)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.Dispatch(i)
			}
		})
	}
}

// BenchmarkDispatchMux2 measures the multi-backend fan-out hot path: one
// enter/exit pair delivered to TALP *and* the extrae tracer from the same
// event stream. The expected cost is roughly the sum of the two direct
// paths — the mux adds a slice iteration, not a lock.
func BenchmarkDispatchMux2(b *testing.B) {
	h, err := experiments.NewDispatchHarness(
		experiments.BackendTALP+","+experiments.BackendExtrae, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Dispatch(i)
	}
}

// BenchmarkDispatchReconfigure measures the extrae hot path while the
// selection keeps flipping — the worst case for the runtime's atomic
// active-set lookup, the synthetic-exit hook and the tracer's accounting.
func BenchmarkDispatchReconfigure(b *testing.B) {
	h, err := experiments.NewDispatchHarness(experiments.BackendExtrae, nil)
	if err != nil {
		b.Fatal(err)
	}
	cfgs := []*ic.Config{
		ic.New("dispatchbench", "bench", []string{"k0", "k1", "k2", "k3"}),
		ic.New("dispatchbench", "bench", []string{"k0", "k1"}),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Dispatch(i)
		if i%1024 == 1023 {
			if _, err := h.RT.Reconfigure(cfgs[(i/1024)%2]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkDispatchHTTP measures the full middleware request path: one
// iteration is one webservice request to the hot feed route — pool
// checkout, the compiled script walk (FunctionActive gate, enter/exit
// dispatch per instrumented function, virtual-clock work advances) and
// the endpoint latency accounting. ns/op divided by EventPairs×2 is the
// per-event cost the benchdiff http_vs_none_cap gate watches: the
// serving path must amortize its per-request overhead to stay within a
// small factor of the bare dispatch baseline.
func BenchmarkDispatchHTTP(b *testing.B) {
	const route = "GET /api/feed"
	for _, backend := range []string{
		experiments.BackendNone,
		experiments.BackendExtrae,
	} {
		b.Run(backend, func(b *testing.B) {
			session, err := capi.NewAppSession("webservice", 0)
			if err != nil {
				b.Fatal(err)
			}
			inst, err := session.Start(nil, capi.RunOptions{
				PatchAll:    true,
				Backends:    []string{backend},
				Ranks:       1,
				HTTPWorkers: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer inst.Close()
			svc, err := middleware.New(inst, session.Program(), capi.WebserviceEndpoints(), middleware.Options{Workers: 1})
			if err != nil {
				b.Fatal(err)
			}
			pairs := svc.EventPairs(route)
			if pairs == 0 {
				b.Fatal("feed route compiled to no event pairs")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := svc.Do(route); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*pairs*2), "ns/event")
		})
	}
}

// BenchmarkMPICollectives measures the simulated MPI substrate itself
// (virtual-clock synchronization), isolating simulator cost from
// measurement cost.
func BenchmarkMPICollectives(b *testing.B) {
	world, err := mpi.NewWorld(4, mpi.DefaultCostModel())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	err = world.Run(func(r *mpi.Rank) error {
		if err := r.Init(); err != nil {
			return err
		}
		for i := 0; i < b.N; i++ {
			if err := r.Allreduce(8); err != nil {
				return err
			}
		}
		return r.Finalize()
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkDispatchSampled measures the sampling/suppression stage in the
// dispatch hot path: the same backend dispatched at full rate and behind a
// 1-in-N stride policy. At 1-in-64 the sampled path must land between the
// discarding "none" baseline and the full backend cost — the benchdiff
// vs_none_cap gate enforces ≤ benchcmp.SampledVsNoneLimit (1.3x of none).
func BenchmarkDispatchSampled(b *testing.B) {
	for _, backend := range []string{
		"sampled:" + experiments.BackendNone + "@64",
		"sampled:" + experiments.BackendExtrae + "@64",
		"sampled:" + experiments.BackendExtrae + "@8",
	} {
		b.Run(backend, func(b *testing.B) {
			h, err := experiments.NewDispatchHarness(backend, nil)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.Dispatch(i)
			}
		})
	}
}

// BenchmarkDispatchAsync measures the asynchronous pipeline's hot-path
// cost: dispatch appends a compact record to the rank's ring and returns,
// while a consumer goroutine replays the stream through the backend off
// the hot path. The inline extrae entry runs alongside as the same-run
// anchor — the benchdiff async_vs_inline_cap gate asserts every async
// entry stays ≤ benchcmp.AsyncVsInlineLimit (0.6x) of its inline
// counterpart, the acceptance bar for lifting backends off the hot path.
func BenchmarkDispatchAsync(b *testing.B) {
	for _, backend := range []string{
		experiments.BackendExtrae,
		"async:" + experiments.BackendExtrae,
		"async:" + experiments.BackendTALP,
		"async:" + experiments.BackendScoreP,
	} {
		b.Run(backend, func(b *testing.B) {
			h, err := experiments.NewDispatchHarness(backend, nil)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.Dispatch(i)
			}
			b.StopTimer()
			// Drain and stop the consumer pool outside the timed window:
			// the benchmark measures the hot-path append, not the drain.
			h.Close()
		})
	}
}

// BenchmarkDispatchSuppressed measures the timed sampler path: a
// min-duration policy that suppresses (nearly) every pair still has to
// read the virtual clock and maintain the timestamp stack per event.
func BenchmarkDispatchSuppressed(b *testing.B) {
	h, err := experiments.NewDispatchHarness(experiments.BackendExtrae, nil)
	if err != nil {
		b.Fatal(err)
	}
	err = h.RT.SetSampling(dyncapi.SamplingConfig{
		Default: &dyncapi.SamplePolicy{MinDurationNs: 10 * 1000 * 1000},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Dispatch(i)
	}
}
