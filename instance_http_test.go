package capi_test

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	capi "capi"
	"capi/internal/ic"
	"capi/middleware"
)

// startWebService boots a fully-instrumented webservice instance plus the
// middleware service that drives request traffic through it.
func startWebService(t *testing.T, opts capi.RunOptions, workers int) (*capi.Instance, *middleware.Service) {
	t.Helper()
	session, err := capi.NewAppSession("webservice", 0)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := session.Start(nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(inst.Close)
	svc, err := middleware.New(inst, session.Program(), capi.WebserviceEndpoints(), middleware.Options{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return inst, svc
}

// TestHTTPSLONarrowsToTarget is the end-to-end acceptance test for SLO
// mode: a webservice starts fully instrumented with the inline extrae
// backend charging its real per-event trace cost to each request's
// virtual clock, so the hot feed endpoint (hundreds of enter/exit pairs
// per request) misses a 5ms p99 by a wide margin. Driving seeded traffic
// must make the controller walk the demote → deselect ladder until every
// trafficked endpoint meets the target — while keeping the instrumentation
// it can afford, and while the sampler's conservation identity stays
// exact.
func TestHTTPSLONarrowsToTarget(t *testing.T) {
	const target = int64(5 * time.Millisecond)
	inst, svc := startWebService(t, capi.RunOptions{
		PatchAll:    true,
		Backends:    []string{"extrae"},
		Ranks:       2,
		HTTPWorkers: 4,
		Adapt:       &capi.AdaptOptions{SLOTargetP99Ns: target},
		Sampling:    &capi.SamplingOptions{Default: &capi.SamplingPolicy{Stride: 1}},
	}, 4)

	full := inst.ActiveFunctions()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 30000; i++ {
		if _, err := svc.Do(svc.RandomRoute(rng)); err != nil {
			t.Fatal(err)
		}
	}

	st := inst.Status()
	if st.HTTP == nil || st.SLO == nil {
		t.Fatalf("status missing http/slo sections: http=%v slo=%v", st.HTTP, st.SLO)
	}
	if st.SLO.TargetP99Ms != 5 {
		t.Errorf("SLO target = %.2fms, want 5ms", st.SLO.TargetP99Ms)
	}
	if st.HTTP.Requests != 30000 {
		t.Errorf("HTTP requests = %d, want 30000", st.HTTP.Requests)
	}
	for _, ep := range st.SLO.Endpoints {
		if ep.Requests == 0 {
			continue
		}
		if !ep.Met {
			t.Errorf("endpoint %s: p99 %.2fms still misses the %.0fms SLO after 30000 requests",
				ep.Endpoint, ep.P99Ms, st.SLO.TargetP99Ms)
		}
	}

	// The controller must actually have narrowed — and stopped short of
	// stripping the instrumentation entirely (max coverage under the SLO).
	if inst.Reconfigs() == 0 {
		t.Error("SLO controller never reconfigured the selection")
	}
	active := inst.ActiveFunctions()
	if active >= full {
		t.Errorf("selection never narrowed: %d active of %d at start", active, full)
	}
	if active == 0 {
		t.Error("SLO controller stripped the selection bare; it must keep affordable coverage")
	}

	// Traffic has stopped; flush the per-rank sampler counters so the
	// conservation identity can be checked exactly, request traffic
	// included.
	inst.FlushSampling()
	c := inst.Sampling().Counters
	if c.Enters == 0 {
		t.Fatal("sampler accounted no enters")
	}
	if got := c.Delivered + c.SampledEvents + c.SuppressedPairs + c.CollapsedCalls; got != c.Enters {
		t.Fatalf("conservation broken: delivered %d + sampled %d + suppressed %d + collapsed %d = %d != enters %d",
			c.Delivered, c.SampledEvents, c.SuppressedPairs, c.CollapsedCalls, got, c.Enters)
	}
	if d := inst.DroppedAsync(); d != 0 {
		t.Errorf("inline instance reported %d async-dropped pairs", d)
	}
}

// TestHTTPServeConservationInterleavings hammers a serving instance with
// concurrent request traffic while a mutator interleaves live control
// actions — SLO retunes, mid-phase re-selections, TTL'd overrides — in
// both inline and async dispatch modes, with an execution phase running
// under the traffic. Run with -race.
//
// The acceptance invariant, per interleaving: the sampler's conservation
// identity holds exactly (enters == delivered + sampled-out + suppressed
// + collapsed) and the independent race-count backend saw exactly the
// delivered enters minus the back-pressure-dropped pairs — no event
// invented, none lost untracked, even with the middleware feeding the
// async pipeline.
func TestHTTPServeConservationInterleavings(t *testing.T) {
	cases := []struct {
		name   string
		async  bool
		mutate string
	}{
		{"inline/retune", false, "retune"},
		{"inline/reselect", false, "reselect"},
		{"inline/ttl", false, "ttl"},
		{"async/retune", true, "retune"},
		{"async/reselect", true, "reselect"},
		{"async/ttl", true, "ttl"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			raceCounter.enters.Store(0)
			raceCounter.exits.Store(0)
			inst, svc := startWebService(t, capi.RunOptions{
				PatchAll:    true,
				Backends:    []string{"race-count"},
				Ranks:       2,
				HTTPWorkers: 4,
				Async:       tc.async,
				AsyncBuf:    256, // small ring: force back-pressure drops under load
				Adapt:       &capi.AdaptOptions{SLOTargetP99Ns: int64(2 * time.Millisecond)},
				Sampling:    &capi.SamplingOptions{Default: &capi.SamplingPolicy{Stride: 2}},
			}, 4)

			all := inst.ActiveFunctionNames()
			if len(all) < 4 {
				t.Fatalf("webservice resolved only %d functions", len(all))
			}
			narrowIC := ic.New("webservice", "race", all[:len(all)/2])
			wideIC := ic.New("webservice", "race", all)
			narrow := &capi.Selection{IC: narrowIC, Selected: narrowIC.Len()}
			wide := &capi.Selection{IC: wideIC, Selected: wideIC.Len()}
			if tc.mutate == "ttl" {
				// TTL'd overrides revert to the last explicit selection;
				// a PatchAll start has none until one is installed.
				if _, err := inst.Reconfigure(wide); err != nil {
					t.Fatal(err)
				}
			}

			done := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() { // live control-plane mutator
				defer wg.Done()
				for j := 0; ; j++ {
					select {
					case <-done:
						return
					default:
					}
					switch tc.mutate {
					case "retune": // SLO target flaps: narrow hard, then relax
						target := int64(1 * time.Millisecond)
						if j%2 == 1 {
							target = int64(50 * time.Millisecond)
						}
						if _, err := inst.Retune(capi.AdaptOptions{SLOTargetP99Ns: target}); err != nil {
							t.Errorf("retune: %v", err)
							return
						}
					case "reselect": // fights the SLO controller's own reconfigs
						sel := narrow
						if j%2 == 1 {
							sel = wide
						}
						if _, err := inst.Reconfigure(sel); err != nil {
							t.Errorf("reconfigure: %v", err)
							return
						}
					case "ttl": // ephemeral probes expiring under live traffic
						if _, err := inst.ReconfigureTTL(narrow, time.Millisecond); err != nil {
							t.Errorf("reconfigure ttl: %v", err)
							return
						}
						if err := inst.SetSamplingTTL(capi.SamplingOptions{
							Default: &capi.SamplingPolicy{Stride: 8},
						}, time.Millisecond); err != nil {
							t.Errorf("sampling ttl: %v", err)
							return
						}
						time.Sleep(time.Millisecond / 2)
					}
				}
			}()

			const drivers, perDriver = 4, 1000
			var dwg sync.WaitGroup
			for d := 0; d < drivers; d++ {
				dwg.Add(1)
				go func(seed int64) {
					defer dwg.Done()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < perDriver; i++ {
						if _, err := svc.Do(svc.RandomRoute(rng)); err != nil {
							t.Errorf("do: %v", err)
							return
						}
					}
				}(int64(d + 1))
			}

			// An execution phase runs underneath the request traffic, so
			// the control actions above really are mid-phase.
			if _, err := inst.Run(); err != nil {
				t.Fatal(err)
			}

			dwg.Wait()
			close(done)
			wg.Wait()

			// Everything is quiescent now: drain what is still in flight
			// in the async shards, then publish the exact per-rank
			// counters — HTTP worker ranks included.
			inst.DrainPipeline()
			inst.FlushSampling()

			c := inst.Sampling().Counters
			if c.Enters == 0 {
				t.Fatal("sampler accounted no enters")
			}
			if got := c.Delivered + c.SampledEvents + c.SuppressedPairs + c.CollapsedCalls; got != c.Enters {
				t.Fatalf("conservation broken: delivered %d + sampled %d + suppressed %d + collapsed %d = %d != enters %d",
					c.Delivered, c.SampledEvents, c.SuppressedPairs, c.CollapsedCalls, got, c.Enters)
			}
			dropped := inst.DroppedAsync()
			if !tc.async && dropped != 0 {
				t.Errorf("inline instance reported %d async-dropped pairs", dropped)
			}
			if got, want := raceCounter.enters.Load(), c.Delivered-dropped; got != want {
				t.Fatalf("backend saw %d enters; sampler delivered %d, ring dropped %d pairs — %d unaccounted",
					got, c.Delivered, dropped, want-got)
			}
		})
	}
}
