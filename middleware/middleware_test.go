package middleware_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	capi "capi"
	"capi/middleware"
)

func startInstance(t *testing.T, httpWorkers int) (*capi.Session, *capi.Instance) {
	t.Helper()
	session, err := capi.NewAppSession("webservice", 0)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := session.Start(nil, capi.RunOptions{
		PatchAll:    true,
		Ranks:       2,
		HTTPWorkers: httpWorkers,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(inst.Close)
	return session, inst
}

// TestServiceRoutes compiles the full webservice route table and checks
// the compiled scripts' shape: every route resolves, the hot feed route
// dispatches far more enter/exit pairs than the health check, and both
// the HTTP path and the direct Do path serve requests that land in the
// instance's per-endpoint accounting.
func TestServiceRoutes(t *testing.T) {
	session, inst := startInstance(t, 2)
	svc, err := middleware.New(inst, session.Program(), capi.WebserviceEndpoints(), middleware.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	feed, health := "GET /api/feed", "GET /healthz"
	if p := svc.EventPairs(feed); p < 100 {
		t.Errorf("feed compiles to %d event pairs, expected a hot route (>= 100)", p)
	}
	if svc.EventPairs(health) >= svc.EventPairs(feed) {
		t.Errorf("healthz (%d pairs) should be far lighter than feed (%d)",
			svc.EventPairs(health), svc.EventPairs(feed))
	}
	for _, ep := range capi.WebserviceEndpoints() {
		if svc.BaseWorkNs(ep.Route) <= 0 {
			t.Errorf("route %s has no base work", ep.Route)
		}
	}

	// HTTP path: the mux serves the compiled route and reports the
	// virtual latency.
	srv := httptest.NewServer(svc)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/api/feed")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"endpoint":"GET /api/feed"`) {
		t.Errorf("unexpected response body: %s", body)
	}

	// Direct path: Do returns the virtual latency without HTTP plumbing.
	lat, err := svc.Do(feed)
	if err != nil {
		t.Fatal(err)
	}
	if lat < svc.BaseWorkNs(feed) {
		t.Errorf("feed latency %dns below its base work %dns", lat, svc.BaseWorkNs(feed))
	}
	if _, err := svc.Do("GET /no/such/route"); err == nil {
		t.Error("Do on an unknown route must error")
	}

	st := inst.Status()
	if st.HTTP == nil {
		t.Fatal("instance status has no HTTP section after traffic")
	}
	var feedReqs int64
	for _, ep := range st.HTTP.Endpoints {
		if ep.Endpoint == feed {
			feedReqs = ep.Requests
		}
	}
	if feedReqs != 2 {
		t.Errorf("feed accounted %d requests, want 2 (one HTTP, one Do)", feedReqs)
	}
}

// TestTapWrap attaches a Tap around a plain handler: each request must
// pass through untouched while its wall-clock latency lands in the
// endpoint histogram, with and without a resolvable function name.
func TestTapWrap(t *testing.T) {
	_, inst := startInstance(t, 2)
	tap, err := middleware.NewTap(inst, "GET /ping", "handle_healthz", 1)
	if err != nil {
		t.Fatal(err)
	}
	if tap.Endpoint() != "GET /ping" {
		t.Errorf("endpoint = %q", tap.Endpoint())
	}
	h := tap.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "pong")
	}))
	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/ping", nil))
		if rec.Body.String() != "pong" {
			t.Fatalf("inner handler response lost: %q", rec.Body.String())
		}
	}

	// An unresolvable function name is not an error: the tap still
	// measures, it just has nothing to dispatch.
	tap2, err := middleware.NewTap(inst, "GET /other", "no_such_function", 1)
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	tap2.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})).
		ServeHTTP(rec, httptest.NewRequest("GET", "/other", nil))

	snap := inst.HTTPSnapshot()
	if snap == nil {
		t.Fatal("no HTTP snapshot after tap traffic")
	}
	got := map[string]int64{}
	for _, ep := range snap.Endpoints {
		got[ep.Endpoint] = ep.Requests
	}
	if got["GET /ping"] != 3 || got["GET /other"] != 1 {
		t.Errorf("tap accounting = %v, want ping=3 other=1", got)
	}
}
