package middleware

import (
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"sort"

	"capi"
	"capi/internal/prog"
)

// A step is one flattened instruction of an endpoint's request script.
// Scripts are compiled once per route and shared read-only by all
// workers.
type step struct {
	kind stepKind
	ns   int64 // stepWork: unscaled self time
	id   int32 // stepEnter/stepExit: packed function ID
	slot int   // stepEnter/stepExit: scratch index pairing exit to enter
}

type stepKind uint8

const (
	stepWork stepKind = iota
	stepEnter
	stepExit
)

// route is one compiled endpoint.
type route struct {
	ep      capi.WebEndpoint
	steps   []step
	slots   int     // enter steps in the script (scratch size)
	pairs   int     // instrumented enter/exit pairs per request
	baseNs  int64   // sum of unscaled work steps
	funcIDs []int32 // unique instrumented IDs, sorted
}

// worker is one checked-out request context plus its request-local
// state. Exactly one request uses a worker at a time (checkout pool), so
// none of this needs locking.
type worker struct {
	rc      *capi.RequestContext
	rng     *rand.Rand
	scratch []bool // indexed by step.slot; balanced scripts leave it all-false
}

// Service serves a synthetic webservice program over HTTP: each request
// executes the endpoint handler's full call tree on the worker's virtual
// clock, dispatching enter/exit events for every currently-instrumented
// function. Inline backends charge their per-event costs (trace writes,
// flush stalls) to the same clock, so request latency is work plus real
// instrumentation cost and narrowing the selection visibly improves the
// measured tail; with the async pipeline the request path pays nothing.
type Service struct {
	inst   *capi.Instance
	opts   Options
	pool   chan *worker
	routes map[string]*route
	mux    *http.ServeMux
}

// New compiles every endpoint's handler tree from the program, registers
// the endpoints with the instance, and checks out the worker pool. The
// program must define each endpoint's Handler function (capi.Webservice
// does for capi.WebserviceEndpoints).
func New(inst *capi.Instance, p *capi.Program, endpoints []capi.WebEndpoint, opts Options) (*Service, error) {
	opts.fill()
	rcs, err := inst.NewRequestContexts(opts.Workers)
	if err != nil {
		return nil, err
	}
	s := &Service{
		inst:   inst,
		opts:   opts,
		pool:   make(chan *worker, opts.Workers),
		routes: make(map[string]*route, len(endpoints)),
		mux:    http.NewServeMux(),
	}
	maxSlots := 0
	for _, ep := range endpoints {
		rt, err := compileRoute(inst, p, ep)
		if err != nil {
			return nil, err
		}
		s.routes[ep.Route] = rt
		if rt.slots > maxSlots {
			maxSlots = rt.slots
		}
		inst.RegisterHTTPEndpoint(ep.Route, rt.funcIDs)
		s.mux.HandleFunc(ep.Route, func(w http.ResponseWriter, r *http.Request) {
			s.serveRoute(rt, w)
		})
	}
	for k, rc := range rcs {
		s.pool <- &worker{
			rc:      rc,
			rng:     rand.New(rand.NewSource(opts.Seed + int64(k))),
			scratch: make([]bool, maxSlots),
		}
	}
	return s, nil
}

// compileRoute flattens the handler's op tree into a linear script:
// Work ops become scaled clock advances, direct calls recurse (count
// times), and every function resolvable in the instrumented set gets an
// enter/exit step pair around its body. Exit steps reference the enter's
// scratch slot so a function deselected mid-request never dispatches an
// exit whose enter was skipped.
func compileRoute(inst *capi.Instance, p *capi.Program, ep capi.WebEndpoint) (*route, error) {
	rt := &route{ep: ep}
	ids := map[int32]bool{}
	var visit func(name string) error
	visit = func(name string) error {
		fn := p.Func(name)
		if fn == nil {
			return fmt.Errorf("middleware: endpoint %q handler tree references undefined function %q", ep.Route, name)
		}
		id, instrumented := inst.ResolveFunctionName(name)
		slot := -1
		if instrumented {
			slot = rt.slots
			rt.slots++
			rt.pairs++
			ids[id] = true
			rt.steps = append(rt.steps, step{kind: stepEnter, id: id, slot: slot})
		}
		for _, op := range fn.Ops {
			switch op.Kind {
			case prog.OpWork:
				rt.steps = append(rt.steps, step{kind: stepWork, ns: op.Work})
				rt.baseNs += op.Work
			case prog.OpCall:
				if op.Virtual || op.ViaPointer {
					continue // webservice handler trees are direct-call only
				}
				for k := 0; k < op.Count; k++ {
					if err := visit(op.Callee); err != nil {
						return err
					}
				}
			}
		}
		if instrumented {
			rt.steps = append(rt.steps, step{kind: stepExit, id: id, slot: slot})
		}
		return nil
	}
	if err := visit(ep.Handler); err != nil {
		return nil, err
	}
	for id := range ids {
		rt.funcIDs = append(rt.funcIDs, id)
	}
	sort.Slice(rt.funcIDs, func(a, b int) bool { return rt.funcIDs[a] < rt.funcIDs[b] })
	return rt, nil
}

// ServeHTTP dispatches to the compiled route scripts.
func (s *Service) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// serveRoute runs one scripted request and reports the virtual latency.
func (s *Service) serveRoute(rt *route, w http.ResponseWriter) {
	lat := s.run(rt)
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"endpoint\":%q,\"latencyMs\":%.3f}\n", rt.ep.Route, float64(lat)/1e6)
}

// Do executes one scripted request against the route without the HTTP
// plumbing and returns its virtual latency — the benchmark entry point.
func (s *Service) Do(routeName string) (int64, error) {
	rt := s.routes[routeName]
	if rt == nil {
		return 0, fmt.Errorf("middleware: unknown route %q", routeName)
	}
	return s.run(rt), nil
}

// run executes one scripted request. Not a //capi:hotpath: the worker
// checkout deliberately blocks to bound dispatch concurrency at the pool
// size — the hot-path contract applies to the dispatch inside
// RequestContext.Enter/Exit, not to the request framing around it.
func (s *Service) run(rt *route) int64 {
	wk := <-s.pool
	mult := wk.multiplier(rt.ep, s.opts.ClampMultiplier)
	rc := wk.rc
	start := rc.Now()
	for _, st := range rt.steps {
		switch st.kind {
		case stepWork:
			rc.Advance(int64(float64(st.ns) * mult))
		case stepEnter:
			if s.inst.FunctionActive(st.id) {
				rc.Enter(st.id)
				wk.scratch[st.slot] = true
			}
		case stepExit:
			if wk.scratch[st.slot] {
				wk.scratch[st.slot] = false
				rc.Exit(st.id)
			}
		}
	}
	lat := rc.Now() - start
	s.inst.ObserveHTTPRequest(rt.ep.Route, lat)
	s.pool <- wk
	return lat
}

// multiplier draws the request's lognormal work multiplier: median
// exp(LatMu) with spread LatSigma, clamped so the synthetic tail stays
// bounded.
func (wk *worker) multiplier(ep capi.WebEndpoint, clamp float64) float64 {
	m := math.Exp(ep.LatMu + ep.LatSigma*wk.rng.NormFloat64())
	if m > clamp {
		m = clamp
	}
	return m
}

// EventPairs returns how many instrumented enter/exit pairs one request
// to the route dispatches at full selection — the divisor benchmarks use
// to express request cost per event.
func (s *Service) EventPairs(routeName string) int {
	if rt := s.routes[routeName]; rt != nil {
		return rt.pairs
	}
	return 0
}

// BaseWorkNs returns the route's unscaled self-time sum: the request
// latency floor with instrumentation fully deselected and multiplier 1.
func (s *Service) BaseWorkNs(routeName string) int64 {
	if rt := s.routes[routeName]; rt != nil {
		return rt.baseNs
	}
	return 0
}

// RandomRoute picks a route weighted by the endpoint mix, for load
// generators.
func (s *Service) RandomRoute(rng *rand.Rand) string {
	total := 0
	for _, rt := range s.routes {
		total += rt.ep.Weight
	}
	if total <= 0 {
		return ""
	}
	// Deterministic iteration order for a given seed.
	names := make([]string, 0, len(s.routes))
	for name := range s.routes {
		names = append(names, name)
	}
	sort.Strings(names)
	n := rng.Intn(total)
	for _, name := range names {
		if n -= s.routes[name].ep.Weight; n < 0 {
			return name
		}
	}
	return names[len(names)-1]
}
