// Package middleware maps live net/http request traffic onto CaPI's
// instrumented dispatch path, so a serving process adapts its
// instrumentation from the traffic it actually receives.
//
// Two layers are provided:
//
//   - Tap wraps any http.Handler: each request begins with a
//     function-entry dispatch of one resolved route function and ends
//     with the matching exit, and the wall-clock latency feeds the
//     instance's per-endpoint histograms (and, on an SLO-adaptive
//     instance, the tail-latency controller).
//
//   - Service executes a synthetic webservice program (see
//     capi.Webservice) end to end: each request runs the endpoint
//     handler's full call tree on a virtual clock, dispatching an
//     enter/exit pair for every instrumented function it visits. The
//     measurement backends charge their per-event costs to that same
//     clock (inline mode), so the coverage/latency trade-off the SLO
//     controller navigates is directly observable: deselecting or
//     demoting a hot function measurably lowers the endpoint's tail
//     latency — and the async pipeline lifts the cost off the request
//     path entirely.
//
// Both layers draw dispatch contexts from the instance's HTTP worker
// pool (capi.RunOptions.HTTPWorkers): every concurrent request owns a
// dedicated rank with its own virtual clock, async pipeline shard and
// sampler slot, preserving the single-writer hot-path contract without
// touching the MPI world's ranks.
package middleware

import (
	"net/http"
	"time"

	"capi"
)

// Options configures a Service's worker pool and latency spread.
type Options struct {
	// Workers is the number of request contexts to check out from the
	// instance (concurrent request capacity). Default 4; the instance
	// must have been started with at least this many
	// RunOptions.HTTPWorkers.
	Workers int

	// Seed seeds the per-worker latency-spread generators. Default 1.
	Seed int64
	// ClampMultiplier caps the lognormal work multiplier so the synthetic
	// tail stays bounded (test determinism). Default 3.5.
	ClampMultiplier float64
}

func (o *Options) fill() {
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.ClampMultiplier <= 0 {
		o.ClampMultiplier = 3.5
	}
}

// Tap dispatches one enter/exit pair per request for a single resolved
// route function around an arbitrary inner handler, and records the
// wall-clock latency against the endpoint. Use it to attach a real
// (non-synthetic) handler to an instrumented instance.
type Tap struct {
	inst     *capi.Instance
	endpoint string
	id       int32
	resolved bool
	pool     chan *capi.RequestContext
}

// NewTap resolves funcName against the instance's instrumented set and
// checks out `workers` request contexts for it. An unresolvable name is
// not an error: the tap still measures latency, it just has no function
// to dispatch (mirroring a route whose handler was never instrumented).
func NewTap(inst *capi.Instance, endpoint, funcName string, workers int) (*Tap, error) {
	if workers <= 0 {
		workers = 4
	}
	rcs, err := inst.NewRequestContexts(workers)
	if err != nil {
		return nil, err
	}
	t := &Tap{inst: inst, endpoint: endpoint, pool: make(chan *capi.RequestContext, workers)}
	for _, rc := range rcs {
		t.pool <- rc
	}
	if id, ok := inst.ResolveFunctionName(funcName); ok {
		t.id, t.resolved = id, true
		inst.RegisterHTTPEndpoint(endpoint, []int32{id})
	} else {
		inst.RegisterHTTPEndpoint(endpoint, nil)
	}
	return t, nil
}

// Wrap returns the instrumented handler. Requests beyond the worker pool
// block until a context frees up, bounding dispatch concurrency at the
// pool size.
func (t *Tap) Wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rc := <-t.pool
		defer func() { t.pool <- rc }()
		entered := t.resolved && t.inst.FunctionActive(t.id)
		if entered {
			rc.Enter(t.id)
		}
		start := time.Now()
		next.ServeHTTP(w, r)
		elapsed := time.Since(start).Nanoseconds()
		rc.Advance(elapsed)
		if entered {
			rc.Exit(t.id)
		}
		t.inst.ObserveHTTPRequest(t.endpoint, elapsed)
	})
}

// Endpoint returns the endpoint name latencies are recorded under.
func (t *Tap) Endpoint() string { return t.endpoint }
