package capi

import (
	"fmt"
	"time"

	"capi/internal/callgraph"
	"capi/internal/compiler"
	"capi/internal/core"
	"capi/internal/dyncapi"
	"capi/internal/exec"
	"capi/internal/ic"
	"capi/internal/metacg"
	"capi/internal/mpi"
	"capi/internal/prog"
	"capi/internal/scorep"
	"capi/internal/spec"
	"capi/internal/talp"
	"capi/internal/workload"
	"capi/internal/xray"
)

// Re-exported types, so library users can drive the full workflow without
// importing internal packages directly.
type (
	// Program is the synthetic application model fed to the toolchain.
	Program = prog.Program
	// Graph is a whole-program call graph (MetaCG result).
	Graph = callgraph.Graph
	// Build is a compiled program (object images + layout).
	Build = compiler.Build
	// IC is an instrumentation configuration.
	IC = ic.Config
	// TALPReport is TALP's end-of-run region summary.
	TALPReport = talp.Report
	// Profile is Score-P's aggregated call-path profile.
	Profile = scorep.Profile
	// LuleshOptions sizes the LULESH workload generator.
	LuleshOptions = workload.LuleshOptions
	// OpenFOAMOptions sizes the OpenFOAM workload generator.
	OpenFOAMOptions = workload.OpenFOAMOptions
	// ModuleLoader resolves !import directives in specifications.
	ModuleLoader = spec.ModuleLoader
	// MapModules serves specification modules from an in-memory map.
	MapModules = spec.MapLoader
)

// Workload generators (stand-ins for the paper's two test cases plus a
// small app for quick starts).
var (
	// Lulesh generates the LULESH 2.0 proxy-app stand-in (§VI).
	Lulesh = workload.Lulesh
	// OpenFOAM generates the icoFoam / lid-driven-cavity stand-in (§VI).
	OpenFOAM = workload.OpenFOAM
	// Quickstart generates a ~35-function miniature MPI application.
	Quickstart = workload.Quickstart
)

// Backend selects the measurement system a Run feeds (Fig. 3).
type Backend string

// The available measurement backends.
const (
	// BackendNone patches but discards events through the generic
	// cyg-profile interface (overhead studies).
	BackendNone Backend = "none"
	// BackendTALP records POP parallel-efficiency metrics per region.
	BackendTALP Backend = "talp"
	// BackendScoreP records call-path profiles.
	BackendScoreP Backend = "scorep"
)

// SessionOptions configures session preparation.
type SessionOptions struct {
	// OptLevel is the modelled optimization level (2 or 3; default 2). It
	// controls auto-inlining and therefore which functions lose symbols
	// and sleds (§V-E).
	OptLevel int
	// XRayThreshold is the sled pre-filter ("-fxray-instruction-
	// threshold"); the DynCaPI default of 1 prepares every function (§IV).
	XRayThreshold int
	// Modules resolves !import directives beyond the built-in ones.
	Modules ModuleLoader
	// RankWorkSkew scales per-rank work to model load imbalance; defaults
	// to a balanced run. Index = rank.
	RankWorkSkew []float64
}

// Session is one application prepared for runtime-adaptable instrumentation:
// generated (or supplied), analysed into a whole-program call graph, and
// compiled once with XRay sleds everywhere. The Fig. 1 loop then iterates
// Select and Run without ever rebuilding.
type Session struct {
	prog    *prog.Program
	graph   *callgraph.Graph
	build   *compiler.Build
	vanilla *compiler.Build // built lazily for baselines
	opts    SessionOptions
}

// NewSession analyses and compiles the program for dynamic instrumentation.
func NewSession(p *Program, opts SessionOptions) (*Session, error) {
	if p == nil {
		return nil, fmt.Errorf("capi: nil program")
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("capi: %w", err)
	}
	g := metacg.BuildWholeProgram(p, metacg.Options{})
	b, err := compiler.Compile(p, compiler.Options{
		XRay:          true,
		XRayThreshold: opts.XRayThreshold,
		OptLevel:      opts.OptLevel,
	})
	if err != nil {
		return nil, fmt.Errorf("capi: %w", err)
	}
	return &Session{prog: p, graph: g, build: b, opts: opts}, nil
}

// Graph returns the whole-program call graph.
func (s *Session) Graph() *Graph { return s.graph }

// Build returns the XRay-instrumented build.
func (s *Session) Build() *Build { return s.build }

// Program returns the underlying program.
func (s *Session) Program() *Program { return s.prog }

// Selection is the outcome of one Select call: the IC plus the paper's
// Table I statistics.
type Selection struct {
	// IC is the instrumentation configuration to apply at run time.
	IC *IC
	// Pre is the number of selected functions before post-processing.
	Pre int
	// Selected is the count after removing inlined functions (§V-E).
	Selected int
	// Added is the number of compensation functions added (§V-E).
	Added int
	// RemovedInlined and AddedCompensation list the affected functions.
	RemovedInlined    []string
	AddedCompensation []string
	// Seconds is the wall-clock selection time (Table I's Time column).
	Seconds float64
}

// Select evaluates a CaPI specification against the session's call graph
// and returns the resulting instrumentation configuration. Inlining
// compensation runs against the session's build (§V-E).
func (s *Session) Select(specSource string) (*Selection, error) {
	eng := core.NewEngine(s.graph)
	res, err := eng.RunSource(specSource, core.Options{
		Symbols: s.build,
		Loader:  s.loader(),
	})
	if err != nil {
		return nil, err
	}
	return &Selection{
		IC:                res.IC(s.prog.Name, ""),
		Pre:               res.Pre.Count(),
		Selected:          res.Selected.Count(),
		Added:             len(res.AddedCompensation),
		RemovedInlined:    res.RemovedInlined,
		AddedCompensation: res.AddedCompensation,
		Seconds:           res.SelectionTime.Seconds(),
	}, nil
}

func (s *Session) loader() spec.ModuleLoader {
	if s.opts.Modules == nil {
		return spec.BuiltinModules{}
	}
	return spec.ChainLoader{s.opts.Modules, spec.BuiltinModules{}}
}

// AttachStaticIDs augments the selection's IC with statically determined
// packed XRay IDs (the §VI-B(a) extension the paper proposes): with IDs in
// the IC, Run can patch hidden DSO functions that name resolution cannot
// reach. The selection is modified in place.
func (s *Session) AttachStaticIDs(sel *Selection) error {
	if sel == nil || sel.IC == nil {
		return fmt.Errorf("capi: nil selection")
	}
	ids, err := s.build.StaticPackedIDs()
	if err != nil {
		return err
	}
	sel.IC = sel.IC.WithIDs(ids)
	return nil
}

// RunOptions configures one measured execution.
type RunOptions struct {
	// Backend selects the measurement system (default BackendNone).
	Backend Backend
	// Ranks is the simulated MPI world size (default 4).
	Ranks int
	// PatchAll patches every sled regardless of the selection (the
	// paper's "xray full" variant).
	PatchAll bool
	// EmulateTALPBug enables TALP's re-entry bug compat mode (§VI-B(b)).
	EmulateTALPBug bool
}

// RunResult is the outcome of one measured execution.
type RunResult struct {
	// InitSeconds is the virtual DynCaPI start-up time (Table II T_init);
	// negative when no instrumentation runtime ran.
	InitSeconds float64
	// TotalSeconds is the virtual end-to-end runtime including init
	// (Table II T_total).
	TotalSeconds float64
	// Events is the number of instrumentation events dispatched.
	Events int64
	// Patched is the number of functions whose sleds were patched.
	Patched int
	// TALP carries the region report when Backend was BackendTALP.
	TALP *TALPReport
	// Profile carries the profile when Backend was BackendScoreP.
	Profile *Profile
	// WallSeconds is the real time the simulation took (diagnostics).
	WallSeconds float64
}

// Run executes the session's build with the selection patched in at
// start-up, under the chosen measurement backend. A nil selection with
// RunOptions.PatchAll false runs with inactive sleds (the "xray inactive"
// baseline).
func (s *Session) Run(sel *Selection, opts RunOptions) (*RunResult, error) {
	start := time.Now()
	if opts.Ranks <= 0 {
		opts.Ranks = 4
	}
	proc, err := s.build.LoadProcess()
	if err != nil {
		return nil, err
	}
	world, err := mpi.NewWorld(opts.Ranks, mpi.DefaultCostModel())
	if err != nil {
		return nil, err
	}
	xr, err := xray.NewRuntime(proc)
	if err != nil {
		return nil, err
	}

	out := &RunResult{InitSeconds: -1}
	var cfg *ic.Config
	if sel != nil {
		cfg = sel.IC
	}
	var backend dyncapi.Backend
	var mon *talp.Monitor
	var meas *scorep.Measurement
	instrumented := cfg != nil || opts.PatchAll
	if instrumented {
		switch opts.Backend {
		case BackendTALP:
			mon = talp.New(world, talp.Options{EmulateReentryBug: opts.EmulateTALPBug})
			backend = dyncapi.NewTALPBackend(mon)
		case BackendScoreP:
			meas, err = scorep.New(scorep.Options{Ranks: opts.Ranks})
			if err != nil {
				return nil, err
			}
			backend = dyncapi.NewScorePBackend(meas, scorep.NewResolverFromExecutable(proc))
		case BackendNone, "":
			backend = &dyncapi.CygBackend{}
		default:
			return nil, fmt.Errorf("capi: unknown backend %q", opts.Backend)
		}
		rt, err := dyncapi.New(proc, xr, cfg, backend, dyncapi.Options{PatchAll: opts.PatchAll})
		if err != nil {
			return nil, err
		}
		out.InitSeconds = rt.InitSeconds()
		out.Patched = rt.Report().Patched
	}

	eng, err := exec.New(exec.Config{
		Build:        s.build,
		Proc:         proc,
		XRay:         xr,
		World:        world,
		RankWorkSkew: s.opts.RankWorkSkew,
	})
	if err != nil {
		return nil, err
	}
	if err := eng.Run(); err != nil {
		return nil, err
	}

	for _, r := range world.Ranks() {
		if sec := r.Clock().Seconds(); sec > out.TotalSeconds {
			out.TotalSeconds = sec
		}
	}
	if out.InitSeconds > 0 {
		out.TotalSeconds += out.InitSeconds
	}
	out.Events = eng.TotalEvents()
	if mon != nil {
		out.TALP = mon.Report()
	}
	if meas != nil {
		out.Profile = meas.Profile()
	}
	out.WallSeconds = time.Since(start).Seconds()
	return out, nil
}

// RunVanilla executes the uninstrumented build (no sleds at all) and
// returns the virtual runtime — the Table II baseline. The vanilla build is
// compiled on first use and cached.
func (s *Session) RunVanilla(ranks int) (float64, error) {
	if s.vanilla == nil {
		vb, err := compiler.Compile(s.prog, compiler.Options{OptLevel: s.opts.OptLevel})
		if err != nil {
			return 0, err
		}
		s.vanilla = vb
	}
	if ranks <= 0 {
		ranks = 4
	}
	return workload.RunVanilla(s.vanilla, ranks)
}

// RecompileSeconds returns the modelled wall-clock cost of a full rebuild —
// what every IC adjustment costs under the *static* workflow the paper
// replaces (§VII-A; ~50 minutes for full-scale OpenFOAM).
func (s *Session) RecompileSeconds() float64 { return s.build.CompileSeconds }
