package capi

import (
	"fmt"
	"sync"
	"time"

	"capi/internal/adapt"
	"capi/internal/callgraph"
	"capi/internal/compiler"
	"capi/internal/core"
	"capi/internal/dyncapi"
	"capi/internal/exec"
	"capi/internal/ic"
	"capi/internal/metacg"
	"capi/internal/mpi"
	"capi/internal/obj"
	"capi/internal/prog"
	"capi/internal/scorep"
	"capi/internal/spec"
	"capi/internal/talp"
	"capi/internal/trace"
	"capi/internal/workload"
	"capi/internal/xray"
)

// Re-exported types, so library users can drive the full workflow without
// importing internal packages directly.
type (
	// Program is the synthetic application model fed to the toolchain.
	Program = prog.Program
	// Graph is a whole-program call graph (MetaCG result).
	Graph = callgraph.Graph
	// Build is a compiled program (object images + layout).
	Build = compiler.Build
	// IC is an instrumentation configuration.
	IC = ic.Config
	// TALPReport is TALP's end-of-run region summary.
	TALPReport = talp.Report
	// Profile is Score-P's aggregated call-path profile.
	Profile = scorep.Profile
	// LuleshOptions sizes the LULESH workload generator.
	LuleshOptions = workload.LuleshOptions
	// OpenFOAMOptions sizes the OpenFOAM workload generator.
	OpenFOAMOptions = workload.OpenFOAMOptions
	// ModuleLoader resolves !import directives in specifications.
	ModuleLoader = spec.ModuleLoader
	// MapModules serves specification modules from an in-memory map.
	MapModules = spec.MapLoader
	// AdaptOptions tunes the live overhead-budget controller.
	AdaptOptions = adapt.Options
	// AdaptEpoch records one controller decision (per epoch boundary).
	AdaptEpoch = adapt.Epoch
	// SLOStatus is the SLO-mode controller snapshot (per-endpoint tail
	// latency vs. target, plus the ladder steps in effect).
	SLOStatus = adapt.SLOStatus
	// SLOEndpoint is one endpoint row of SLOStatus.
	SLOEndpoint = adapt.SLOEndpoint
	// WebEndpoint describes one route of the Webservice workload.
	WebEndpoint = workload.Endpoint
	// ReconfigReport summarizes one live re-selection (delta re-patch).
	ReconfigReport = dyncapi.ReconfigReport
	// TraceReport is the extrae backend's end-of-run trace summary:
	// per-rank accounting (recorded/dropped/wrapped/flushes), per-function
	// totals and the virtual-time-ordered merged timeline.
	TraceReport = trace.Report
	// TraceOptions tunes the extrae backend's sharded trace buffer (ring
	// size, retained budget, drop vs. wrap policy).
	TraceOptions = trace.Options
	// SamplingPolicy is one function's sampling/suppression policy
	// (1-in-N stride, min-duration suppression, redundancy collapse).
	SamplingPolicy = dyncapi.SamplePolicy
	// SamplingOptions is a whole sampling table: a default policy plus
	// per-function overrides, applied atomically to the live hot path.
	SamplingOptions = dyncapi.SamplingConfig
	// SamplingSnapshot is the point-in-time sampling view (policies +
	// conservation counters) served on /v1/status and in reports.
	SamplingSnapshot = dyncapi.SamplingSnapshot
	// SamplingCounters is the sampler's conservation accounting:
	// enters == delivered + sampledEvents + suppressedPairs + collapsedCalls.
	SamplingCounters = dyncapi.SamplingCounters
)

// Workload generators (stand-ins for the paper's two test cases plus a
// small app for quick starts).
var (
	// Lulesh generates the LULESH 2.0 proxy-app stand-in (§VI).
	Lulesh = workload.Lulesh
	// OpenFOAM generates the icoFoam / lid-driven-cavity stand-in (§VI).
	OpenFOAM = workload.OpenFOAM
	// Quickstart generates a ~35-function miniature MPI application.
	Quickstart = workload.Quickstart
	// Webservice generates the request-serving web-service workload whose
	// endpoints the capi/middleware package serves over net/http.
	Webservice = workload.Webservice
	// WebserviceEndpoints returns the Webservice route table (mux pattern,
	// handler function, traffic weight, lognormal latency shape).
	WebserviceEndpoints = workload.WebserviceEndpoints
)

// Backend names the measurement system a Run feeds (Fig. 3). The set is
// open: RegisterBackend adds new names, RegisteredBackends lists them. The
// constants below are the built-ins.
type Backend string

// The built-in measurement backends.
const (
	// BackendNone patches but discards events through the generic
	// cyg-profile interface (overhead studies).
	BackendNone Backend = "none"
	// BackendTALP records POP parallel-efficiency metrics per region.
	BackendTALP Backend = "talp"
	// BackendScoreP records call-path profiles.
	BackendScoreP Backend = "scorep"
	// BackendExtrae records a per-rank sharded event trace with a merged
	// end-of-run timeline (Extrae-style tracing).
	BackendExtrae Backend = "extrae"
)

// SessionOptions configures session preparation.
type SessionOptions struct {
	// OptLevel is the modelled optimization level (2 or 3; default 2). It
	// controls auto-inlining and therefore which functions lose symbols
	// and sleds (§V-E).
	OptLevel int
	// XRayThreshold is the sled pre-filter ("-fxray-instruction-
	// threshold"); the DynCaPI default of 1 prepares every function (§IV).
	XRayThreshold int
	// Modules resolves !import directives beyond the built-in ones.
	Modules ModuleLoader
	// RankWorkSkew scales per-rank work to model load imbalance; defaults
	// to a balanced run. Index = rank.
	RankWorkSkew []float64
}

// Session is one application prepared for runtime-adaptable instrumentation:
// generated (or supplied), analysed into a whole-program call graph, and
// compiled once with XRay sleds everywhere. The Fig. 1 loop then iterates
// Select and Run without ever rebuilding.
type Session struct {
	prog    *prog.Program
	graph   *callgraph.Graph
	build   *compiler.Build
	vanilla *compiler.Build // built lazily for baselines
	opts    SessionOptions
}

// NewAppSession prepares a session over one of the named stand-in
// workloads — "quickstart", "lulesh", "openfoam" or "webservice" (scale
// sizes the OpenFOAM call graph; it is ignored otherwise). The
// optimization levels match the paper's builds (LULESH at -O3, the rest
// at -O2). This is the shared entry point of the CLI tools' -app flags.
func NewAppSession(app string, scale float64) (*Session, error) {
	switch app {
	case "quickstart":
		return NewSession(Quickstart(), SessionOptions{OptLevel: 2})
	case "lulesh":
		return NewSession(Lulesh(LuleshOptions{}), SessionOptions{OptLevel: 3})
	case "openfoam":
		return NewSession(OpenFOAM(OpenFOAMOptions{Scale: scale}), SessionOptions{OptLevel: 2})
	case "webservice":
		return NewSession(Webservice(), SessionOptions{OptLevel: 2})
	default:
		return nil, fmt.Errorf("capi: unknown app %q", app)
	}
}

// NewSession analyses and compiles the program for dynamic instrumentation.
func NewSession(p *Program, opts SessionOptions) (*Session, error) {
	if p == nil {
		return nil, fmt.Errorf("capi: nil program")
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("capi: %w", err)
	}
	g := metacg.BuildWholeProgram(p, metacg.Options{})
	b, err := compiler.Compile(p, compiler.Options{
		XRay:          true,
		XRayThreshold: opts.XRayThreshold,
		OptLevel:      opts.OptLevel,
	})
	if err != nil {
		return nil, fmt.Errorf("capi: %w", err)
	}
	return &Session{prog: p, graph: g, build: b, opts: opts}, nil
}

// Graph returns the whole-program call graph.
func (s *Session) Graph() *Graph { return s.graph }

// Build returns the XRay-instrumented build.
func (s *Session) Build() *Build { return s.build }

// Program returns the underlying program.
func (s *Session) Program() *Program { return s.prog }

// Selection is the outcome of one Select call: the IC plus the paper's
// Table I statistics.
type Selection struct {
	// IC is the instrumentation configuration to apply at run time.
	IC *IC
	// Pre is the number of selected functions before post-processing.
	Pre int
	// Selected is the count after removing inlined functions (§V-E).
	Selected int
	// Added is the number of compensation functions added (§V-E).
	Added int
	// RemovedInlined and AddedCompensation list the affected functions.
	RemovedInlined    []string
	AddedCompensation []string
	// Seconds is the wall-clock selection time (Table I's Time column).
	Seconds float64
}

// Select evaluates a CaPI specification against the session's call graph
// and returns the resulting instrumentation configuration. Inlining
// compensation runs against the session's build (§V-E).
func (s *Session) Select(specSource string) (*Selection, error) {
	eng := core.NewEngine(s.graph)
	res, err := eng.RunSource(specSource, core.Options{
		Symbols: s.build,
		Loader:  s.loader(),
	})
	if err != nil {
		return nil, err
	}
	return &Selection{
		IC:                res.IC(s.prog.Name, ""),
		Pre:               res.Pre.Count(),
		Selected:          res.Selected.Count(),
		Added:             len(res.AddedCompensation),
		RemovedInlined:    res.RemovedInlined,
		AddedCompensation: res.AddedCompensation,
		Seconds:           res.SelectionTime.Seconds(),
	}, nil
}

func (s *Session) loader() spec.ModuleLoader {
	if s.opts.Modules == nil {
		return spec.BuiltinModules{}
	}
	return spec.ChainLoader{s.opts.Modules, spec.BuiltinModules{}}
}

// AttachStaticIDs augments the selection's IC with statically determined
// packed XRay IDs (the §VI-B(a) extension the paper proposes): with IDs in
// the IC, Run can patch hidden DSO functions that name resolution cannot
// reach. The selection is modified in place.
func (s *Session) AttachStaticIDs(sel *Selection) error {
	if sel == nil || sel.IC == nil {
		return fmt.Errorf("capi: nil selection")
	}
	ids, err := s.build.StaticPackedIDs()
	if err != nil {
		return err
	}
	sel.IC = sel.IC.WithIDs(ids)
	return nil
}

// RunOptions configures one measured execution.
type RunOptions struct {
	// Backends selects the measurement systems by registry name. With
	// several names, a fan-out mux delivers every enter/exit event to each
	// of them — one run records TALP efficiency *and* an Extrae trace from
	// the same event stream. Order is delivery (and report) order. Empty
	// falls back to the single-Backend shim below.
	Backends []string
	// Backend selects a single measurement system (default BackendNone).
	// It is the one-element shim over Backends and is ignored when
	// Backends is non-empty.
	Backend Backend
	// Ranks is the simulated MPI world size (default 4).
	Ranks int
	// PatchAll patches every sled regardless of the selection (the
	// paper's "xray full" variant).
	PatchAll bool
	// EmulateTALPBug enables TALP's re-entry bug compat mode (§VI-B(b)).
	EmulateTALPBug bool
	// Adapt enables the live overhead-budget controller: it watches
	// per-function event counts and, at epoch boundaries of the virtual
	// clock, narrows the selection in place (hottest low-duration
	// functions dropped first) whenever the instrumentation overhead
	// exceeds the budget. nil disables adaptation.
	Adapt *AdaptOptions
	// Trace tunes the extrae backend's sharded buffer; nil uses defaults
	// (4096-event rings, unbounded retention). Ranks is filled in from
	// RunOptions.Ranks. Ignored for other backends.
	Trace *TraceOptions
	// Sampling installs an initial sampling/suppression table: per-function
	// 1-in-N stride sampling, min-duration suppression and redundancy
	// collapse between the XRay handler and the backend chain. nil starts
	// unsampled; Instance.SetSampling changes the table on a live run.
	Sampling *SamplingOptions
	// Async lifts the measurement backends off the dispatch hot path: the
	// XRay handler appends a compact event record to a bounded per-rank ring
	// and returns; a consumer pool replays the records through the backend
	// chain asynchronously. Phase-end results are exact (Run drains the
	// pipeline before capturing them); overload drops whole enter/exit
	// pairs, counted in DroppedAsync. Incompatible with Adapt (the
	// controller needs events on live rank clocks).
	Async bool
	// AsyncBuf is the per-rank ring capacity in events (0 = the
	// dyncapi.DefaultAsyncBuf default). Only meaningful with Async.
	AsyncBuf int
	// HTTPWorkers sizes the pool of request contexts the capi/middleware
	// package may check out (Instance.NewRequestContexts): each worker is
	// a dedicated dispatch rank beyond the MPI world, with its own async
	// pipeline shard and sampler slot, so concurrent HTTP requests keep
	// the single-writer hot-path contract. 0 means no middleware pool.
	HTTPWorkers int
	// PanicLimit is the per-backend circuit-breaker threshold: every
	// registry-built backend runs behind a panic barrier, and after this
	// many recovered panics in one backend's delivery paths (events,
	// synthetic exits, StartPhase, Report) the backend is auto-detached
	// from the live chain — the instrumented process never crashes because
	// a measurement tool did. 0 uses DefaultPanicLimit; negative keeps the
	// barrier (panics recovered and counted) but never detaches.
	PanicLimit int
}

// backendNames resolves the configured backend set: Backends verbatim when
// set, otherwise the single Backend shim (default "none"). Validation
// against the registry happens in buildMeasurementBackends, the single
// place every backend list goes through.
func (o RunOptions) backendNames() []string {
	if len(o.Backends) > 0 {
		return o.Backends
	}
	name := string(o.Backend)
	if name == "" {
		name = string(BackendNone)
	}
	return []string{name}
}

// RunResult is the outcome of one measured execution.
type RunResult struct {
	// InitSeconds is the virtual instrumentation set-up cost this phase
	// paid before executing: the DynCaPI start-up time (Table II T_init)
	// on an instance's first run, the accumulated live re-patch cost of
	// Reconfigure calls on later runs. Negative when no instrumentation
	// runtime ran.
	InitSeconds float64
	// TotalSeconds is the virtual end-to-end runtime of this phase
	// including InitSeconds (Table II T_total).
	TotalSeconds float64
	// Events is the number of instrumentation events dispatched during
	// this phase.
	Events int64
	// Patched is the number of functions whose sleds were patched at
	// DynCaPI start-up.
	Patched int
	// ActiveFuncs is the selection size when the phase ended; it differs
	// from Patched after live re-selection (Reconfigure or Adapt).
	ActiveFuncs int
	// Reconfigs counts the live re-selections applied so far (manual
	// Reconfigure calls and controller decisions).
	Reconfigs int
	// DroppedFuncs lists the functions the adaptive controller has
	// deselected, in drop order.
	DroppedFuncs []string
	// DemotedFuncs lists the functions the controller currently keeps
	// demoted to 1-in-N sampling (the gentler knob it tries before
	// deselection).
	DemotedFuncs []string
	// AdaptEpochs carries the controller's per-epoch decisions when
	// RunOptions.Adapt was set.
	AdaptEpochs []AdaptEpoch
	// Sampling carries the sampler's exact end-of-phase counters and
	// installed policies; nil when no sampling policy was ever installed.
	// On an async run it is captured after the pipeline drain barrier, so
	// the counters reconcile exactly against what the backends received.
	Sampling *SamplingSnapshot
	// DroppedAsync is the cumulative count of enter/exit pairs the async
	// pipeline rejected under back-pressure (always 0 on inline runs). The
	// exact conservation identity on an async run is
	// enters == delivered + sampledOut + suppressed + collapsed + droppedAsync.
	DroppedAsync int64
	// DroppedPanicked is the cumulative count of enters the panic barriers
	// swallowed (the enter that panicked, plus every enter arriving at an
	// open breaker or a detached backend's tombstone), summed over every
	// backend ever attached. It extends the per-backend conservation
	// identity: for each backend,
	// enters == delivered + sampledOut + suppressed + collapsed + droppedAsync + droppedPanicked,
	// where "delivered" means delivered to the backend successfully.
	DroppedPanicked int64
	// Breaker carries the per-backend panic-barrier stats of every backend
	// that ever panicked; DetachedBackends lists the backends the circuit
	// breaker removed from the live instance, in trip order.
	Breaker          []BreakerStatus `json:",omitempty"`
	DetachedBackends []string        `json:",omitempty"`
	// Backends lists the attached measurement backends in delivery order;
	// Reports carries each backend's end-of-phase report, keyed by backend
	// name (backends that produced nothing are absent).
	Backends []string
	Reports  map[string]Report
	// TALP carries the region report when the talp backend was attached.
	//
	// Deprecated: read Reports["talp"] (the unified envelope) instead.
	TALP *TALPReport
	// Profile carries the profile when the scorep backend was attached.
	//
	// Deprecated: read Reports["scorep"] instead.
	Profile *Profile
	// Trace carries the trace summary when the extrae backend was attached.
	//
	// Deprecated: read Reports["extrae"] instead.
	Trace *TraceReport
	// WallSeconds is the real time the simulation took (diagnostics).
	WallSeconds float64
}

// Instance is a live execution environment prepared by Session.Start: the
// loaded process, its XRay runtime and — when instrumented — the DynCaPI
// runtime with the measurement backend attached. It is the unit of
// *runtime adaptability*: the selection can be changed in place with
// Reconfigure (only the delta sleds are re-patched) and the workload can be
// executed repeatedly with Run, without ever rebuilding or re-initializing
// the instrumentation — the Fig. 1 loop without leaving the process.
//
// An Instance is safe for concurrent use: Reconfigure, Retune and every
// accessor (Status, TraceReport, TALPReport, Profile, …) may be called from
// other goroutines while a Run executes — this is what lets the HTTP
// control plane (internal/ctl) drive a live instance remotely. Concurrent
// Run calls serialize: phases never overlap.
type Instance struct {
	s    *Session
	opts RunOptions

	proc *obj.Process
	xr   *xray.Runtime
	rt   *dyncapi.Runtime
	ctrl *adapt.Controller

	// runMu serializes Run calls: one phase at a time.
	runMu sync.Mutex

	// mu guards the per-phase state below. Run swaps the world and each
	// backend's measurement substrate at phase boundaries while the control
	// plane reads them for live reports; pendingNs is charged by Reconfigure
	// on one goroutine and billed by Run on another; SetBackends swaps the
	// backend set as a whole.
	mu    sync.Mutex
	world *mpi.World
	// backends is the attached measurement-backend set, registry-built, in
	// delivery order. curWorld always points at the most recent phase's
	// world so a backend swapped in mid-phase can attach to it.
	backends []MeasurementBackend
	curWorld *mpi.World
	// pendingNs is virtual set-up cost to charge to the next Run: T_init
	// before the first phase, accumulated Reconfigure costs afterwards.
	pendingNs int64
	runs      int
	running   bool
	events    int64 // dispatched events, accumulated across completed phases
	wallStart time.Time
	// guards holds the panic barrier of every backend ever attached (the
	// live set and the breaker-detached ones), in attach order — the drop
	// accounting is cumulative, so conservation stays exact across
	// detaches. detached lists the names the breaker removed, in trip
	// order; breakerNotify is the trip callback (SetBreakerNotify).
	guards        []*dyncapi.Guard
	detached      []string
	breakerNotify func(BreakerEvent)

	// ttl is the ephemeral-probe scheduler: pending auto-reverts for TTL'd
	// selections and sampling overrides (see ttl.go). It has its own lock;
	// the ttl.mu → (rt locks) order matches mu's.
	ttl ttlState

	// http is the middleware support state: the request-context allocator,
	// lazy name→ID index and per-endpoint latency accounting (http.go). It
	// has its own lock, never held together with mu.
	http httpState
}

// Start prepares a live instance: the build is loaded, the XRay runtime
// registers every patchable object, and the selection is patched in (one
// coalesced batch). A nil selection with RunOptions.PatchAll false prepares
// an uninstrumented instance (the "xray inactive" baseline).
func (s *Session) Start(sel *Selection, opts RunOptions) (*Instance, error) {
	if opts.Ranks <= 0 {
		opts.Ranks = 4
	}
	proc, err := s.build.LoadProcess()
	if err != nil {
		return nil, err
	}
	world, err := mpi.NewWorld(opts.Ranks, mpi.DefaultCostModel())
	if err != nil {
		return nil, err
	}
	xr, err := xray.NewRuntime(proc)
	if err != nil {
		return nil, err
	}
	inst := &Instance{s: s, opts: opts, proc: proc, xr: xr, world: world, curWorld: world, wallStart: time.Now()}
	inst.ttl.wake = make(chan struct{}, 1)

	var cfg *ic.Config
	if sel != nil {
		cfg = sel.IC
	}
	if cfg == nil && !opts.PatchAll {
		return inst, nil // uninstrumented baseline
	}

	backends, backend, err := buildMeasurementBackends(opts.backendNames(), BackendConfig{
		// Per-rank backend state (scorep, extrae) is sized to cover the
		// middleware's worker ranks too — they dispatch past the MPI world.
		Ranks:          opts.Ranks + opts.HTTPWorkers,
		Proc:           proc,
		World:          world,
		EmulateTALPBug: opts.EmulateTALPBug,
		Trace:          traceOptionsFor(opts),
	}, inst.guardOptions())
	if err != nil {
		return nil, err
	}
	inst.backends = backends
	inst.guards = guardsOf(backends)
	if opts.Adapt != nil {
		if opts.Async && opts.Adapt.SLOTargetP99Ns <= 0 {
			// Budget mode stays incompatible with the pipeline. SLO mode is
			// fine: its decisions are driven by request latencies observed on
			// the middleware's live worker clocks, not by backend-chain
			// events, so replay does not starve the controller.
			return nil, fmt.Errorf("capi: Async and Adapt are incompatible: the overhead-budget controller detects epoch boundaries on live rank clocks, which the replayed pipeline events do not advance")
		}
		inst.ctrl = adapt.New(backend, *opts.Adapt)
		backend = inst.ctrl
	}
	rt, err := dyncapi.New(proc, xr, cfg, backend, dyncapi.Options{
		PatchAll: opts.PatchAll,
		// HTTP middleware workers are extra dispatch ranks past the MPI
		// world: sized here so each gets its own pipeline shard and sampler
		// slot instead of overflowing to the cold paths.
		Ranks:    opts.Ranks + opts.HTTPWorkers,
		Async:    opts.Async,
		AsyncBuf: opts.AsyncBuf,
	})
	if err != nil {
		return nil, err
	}
	if inst.ctrl != nil {
		inst.ctrl.Attach(rt)
	}
	if opts.Sampling != nil {
		if err := rt.SetSampling(*opts.Sampling); err != nil {
			return nil, err
		}
	}
	inst.rt = rt
	inst.pendingNs = rt.Report().InitVirtualNs
	// Pre-publication writes: the TTL base snapshots start as the initial
	// explicit selection/sampling table, before any other goroutine can see
	// the instance.
	inst.ttl.userIC = cfg //capi:unguarded-ok pre-publication init in Start
	if opts.Sampling != nil {
		inst.ttl.lastSampling = copySamplingConfig(*opts.Sampling) //capi:unguarded-ok pre-publication init in Start
	}
	return inst, nil
}

// guardOptions builds the panic-barrier configuration shared by Start and
// SetBackends.
func (i *Instance) guardOptions() dyncapi.GuardOptions {
	return dyncapi.GuardOptions{PanicLimit: i.opts.PanicLimit, OnTrip: i.onBreakerTrip}
}

// Reconfigure applies a new selection to the live instance: the currently
// patched set is diffed against the new IC and only the delta sleds are
// re-patched, under coalesced mprotect windows. The accumulated virtual
// re-patch cost is charged to the next Run as its set-up time — the dynamic
// workflow's turnaround, where the static workflow pays a recompile. A
// reconfiguration landing *during* a phase (another goroutine is inside
// Run — the control plane's remote re-selection) is charged to that phase.
//
// An explicit Reconfigure cancels a pending TTL revert (ReconfigureTTL):
// the newest explicit selection wins, and becomes the base a later TTL'd
// override reverts to.
func (i *Instance) Reconfigure(sel *Selection) (ReconfigReport, error) {
	if i.rt == nil {
		return ReconfigReport{}, fmt.Errorf("capi: instance is not instrumented")
	}
	if sel == nil || sel.IC == nil {
		return ReconfigReport{}, fmt.Errorf("capi: nil selection")
	}
	rep, err := i.applySelection(sel.IC)
	if err != nil {
		return rep, err
	}
	i.ttlExplicitSelect(sel.IC)
	return rep, nil
}

// applySelection re-patches to cfg and charges the virtual cost to the
// next phase — shared by Reconfigure, ReconfigureTTL and TTL expiry (which
// must not cancel the pending revert it is delivering).
func (i *Instance) applySelection(cfg *ic.Config) (ReconfigReport, error) {
	rep, err := i.rt.Reconfigure(cfg)
	if err != nil {
		return rep, err
	}
	i.mu.Lock()
	i.pendingNs += rep.VirtualNs
	i.mu.Unlock()
	return rep, nil
}

// Retune adjusts the live overhead-budget controller's tuning (budget,
// epoch length, reconfiguration bound) while the workload executes. Zero
// fields keep their current value; a negative MaxReconfigs lifts the bound.
// It fails when the instance was started without RunOptions.Adapt.
func (i *Instance) Retune(opts AdaptOptions) (AdaptOptions, error) {
	if i.ctrl == nil {
		return AdaptOptions{}, fmt.Errorf("capi: instance is not adaptive (start with RunOptions.Adapt)")
	}
	return i.ctrl.Retune(opts), nil
}

// SetSampling replaces the live instance's sampling/suppression table:
// per-function 1-in-N stride sampling, min-duration suppression and
// redundancy collapse in the dispatch hot path, published atomically so
// rates change mid-phase without locking the handlers. The config is
// validated — including function-name resolution — before anything is
// applied, so an error implies the previous table is untouched. An empty
// config clears all policies. On an adaptive instance the table replaces
// the controller's demotions too (the controller re-demotes at the next
// epoch if pressure persists).
//
// An explicit SetSampling cancels a pending TTL revert (SetSamplingTTL):
// the newest explicit table wins, and becomes the base a later TTL'd
// override reverts to.
func (i *Instance) SetSampling(cfg SamplingOptions) error {
	if i.rt == nil {
		return fmt.Errorf("capi: instance is not instrumented")
	}
	if err := i.applySampling(cfg); err != nil {
		return err
	}
	i.ttlExplicitSampling(cfg)
	return nil
}

// applySampling installs a sampling table and re-arms the adapt ladder —
// shared by SetSampling, SetSamplingTTL and TTL expiry (which must not
// cancel the pending revert it is delivering).
func (i *Instance) applySampling(cfg SamplingOptions) error {
	if err := i.rt.SetSampling(cfg); err != nil {
		return err
	}
	if i.ctrl != nil {
		// The table replacement wiped the controller's demotion policies;
		// drop the ladder bookkeeping with them so the controller demotes
		// again (rather than escalating straight to deselection, or
		// promoting stale entries over the new table).
		i.ctrl.ResetLadder()
	}
	return nil
}

// Sampling returns the live sampling view: installed policies plus the
// conservation counters (enters == delivered + sampledEvents +
// suppressedPairs + collapsedCalls). Mid-phase the counters may lag the
// hot path by up to one publication window; after a completed phase they
// are exact. Zero value for an uninstrumented instance.
func (i *Instance) Sampling() SamplingSnapshot {
	if i.rt == nil {
		return SamplingSnapshot{}
	}
	return i.rt.SamplingSnapshot()
}

// FlushSampling publishes the exact per-rank sampling counters, HTTP
// worker ranks included (Run flushes only the MPI world's). Quiescent
// only: no phase may be executing and no request may be dispatching —
// stop the traffic first. Serving processes call it before reading a
// final, exact Sampling() accounting of their request traffic.
func (i *Instance) FlushSampling() {
	if i.rt != nil {
		i.rt.FlushSampling()
	}
}

// Adaptive reports whether the instance runs under the overhead-budget
// controller.
func (i *Instance) Adaptive() bool { return i.ctrl != nil }

// InitSeconds returns the DynCaPI start-up time (T_init) in virtual
// seconds, or -1 for an uninstrumented instance.
func (i *Instance) InitSeconds() float64 {
	if i.rt == nil {
		return -1
	}
	return i.rt.InitSeconds()
}

// ActiveFunctions returns the current selection size.
func (i *Instance) ActiveFunctions() int {
	if i.rt == nil {
		return 0
	}
	return i.rt.ActiveCount()
}

// Reconfigs returns how many live re-selections have been applied.
func (i *Instance) Reconfigs() int {
	if i.rt == nil {
		return 0
	}
	return i.rt.Reconfigs()
}

// traceOptionsFor copies the run's trace tuning with Ranks filled in
// (including the middleware worker ranks, which shard like MPI ranks).
func traceOptionsFor(opts RunOptions) *TraceOptions {
	t := trace.Options{}
	if opts.Trace != nil {
		t = *opts.Trace
	}
	t.Ranks = opts.Ranks + opts.HTTPWorkers
	return &t
}

// measurementBackends snapshots the attached backend set.
func (i *Instance) measurementBackends() []MeasurementBackend {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.backends
}

// Reports returns the unified report envelope: every attached measurement
// backend's current report, keyed by backend name (backends that have
// produced nothing yet are absent). Safe to call while a Run is executing —
// each backend snapshots its own substrate under its lock, so a mid-phase
// report is per-backend consistent.
func (i *Instance) Reports() map[string]Report {
	out := map[string]Report{}
	for _, mb := range i.measurementBackends() {
		if rep := mb.Report(); rep != nil {
			out[mb.Name()] = rep
		}
	}
	return out
}

// TraceReport returns the extrae backend's current trace summary, or nil
// when the instance does not trace. Safe to call mid-phase.
//
// Deprecated: use Reports (the unified envelope keyed by backend name);
// this accessor only sees the built-in extrae backend.
func (i *Instance) TraceReport() *TraceReport {
	for _, mb := range i.measurementBackends() {
		if eb, ok := unwrapBackend(mb).(*extraeBackend); ok {
			return eb.traceReport()
		}
	}
	return nil
}

// TALPReport returns the TALP backend's current region report, or nil when
// the instance does not run under TALP. Safe to call mid-phase.
//
// Deprecated: use Reports (the unified envelope keyed by backend name);
// this accessor only sees the built-in talp backend.
func (i *Instance) TALPReport() *TALPReport {
	for _, mb := range i.measurementBackends() {
		if tb, ok := unwrapBackend(mb).(*talpBackend); ok {
			return tb.talpReport()
		}
	}
	return nil
}

// Profile returns the Score-P backend's current call-path profile, or nil
// when the instance does not profile. Safe to call mid-phase.
//
// Deprecated: use Reports (the unified envelope keyed by backend name);
// this accessor only sees the built-in scorep backend.
func (i *Instance) Profile() *Profile {
	for _, mb := range i.measurementBackends() {
		if sb, ok := unwrapBackend(mb).(*scorepBackend); ok {
			return sb.profile()
		}
	}
	return nil
}

// Backends returns the names of the attached measurement backends, in
// delivery order. Empty for an uninstrumented instance.
func (i *Instance) Backends() []string {
	mbs := i.measurementBackends()
	names := make([]string, len(mbs))
	for idx, mb := range mbs {
		names[idx] = mb.Name()
	}
	return names
}

// Backend returns the first attached measurement backend's name — the whole
// set for a single-backend run.
//
// Deprecated: use Backends; a multi-backend instance has more than one.
func (i *Instance) Backend() Backend {
	if names := i.Backends(); len(names) > 0 {
		return Backend(names[0])
	}
	if i.opts.Backend != "" {
		return i.opts.Backend
	}
	return BackendNone
}

// SetBackends swaps the attached measurement-backend set while the instance
// is live: the patched sleds and the selection are untouched, the event
// stream simply starts feeding the new set. Detaching backends close their
// open state with synthetic exits (counted per backend in the returned
// BackendSwapReport) because an enter they recorded can never be balanced
// after the detach; the new set's virtual start-up cost is charged to the
// next (or current) phase. Swapping is not supported on an adaptive
// instance — the controller owns the backend chain there.
func (i *Instance) SetBackends(names []string) (BackendSwapReport, error) {
	if i.rt == nil {
		return BackendSwapReport{}, fmt.Errorf("capi: instance is not instrumented")
	}
	if i.ctrl != nil {
		return BackendSwapReport{}, fmt.Errorf("capi: cannot swap backends on an adaptive instance")
	}
	if len(names) == 0 {
		return BackendSwapReport{}, fmt.Errorf("capi: empty backend list")
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	backends, sink, err := buildMeasurementBackends(names, BackendConfig{
		Ranks:          i.opts.Ranks,
		Proc:           i.proc,
		World:          i.curWorld,
		EmulateTALPBug: i.opts.EmulateTALPBug,
		Trace:          traceOptionsFor(i.opts),
	}, i.guardOptions())
	if err != nil {
		return BackendSwapReport{}, err
	}
	rep, err := i.rt.SwapBackend(sink)
	if err != nil {
		return rep, err
	}
	i.backends = backends
	i.guards = append(i.guards, guardsOf(backends)...)
	i.pendingNs += rep.VirtualNs
	return rep, nil
}

// Ranks returns the simulated MPI world size.
func (i *Instance) Ranks() int { return i.opts.Ranks }

// Session returns the session the instance was started from.
func (i *Instance) Session() *Session { return i.s }

// Runs returns how many phases have completed.
func (i *Instance) Runs() int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.runs
}

// ActiveFunctionNames returns the names of the currently selected
// functions, sorted by packed ID; functions selected by static ID whose
// name never resolved appear as "id:N".
func (i *Instance) ActiveFunctionNames() []string {
	if i.rt == nil {
		return nil
	}
	funcs := i.rt.ActiveFuncs()
	names := make([]string, 0, len(funcs))
	for _, rf := range funcs {
		if rf.Name != "" {
			names = append(names, rf.Name)
		} else {
			names = append(names, fmt.Sprintf("id:%d", rf.PackedID))
		}
	}
	return names
}

// UnknownFunctionNames returns the subset of names that do not resolve to
// any patchable function of the live process — callers building an IC from
// a raw name list (the control plane's include path) use it to reject
// typos before a reconfiguration silently selects nothing. The resolution
// table is immutable after Start, so this is safe mid-phase.
func (i *Instance) UnknownFunctionNames(names []string) []string {
	var unknown []string
	if i.rt == nil {
		return append(unknown, names...)
	}
	known := make(map[string]bool)
	for _, rf := range i.rt.Funcs() {
		if rf.Name != "" {
			known[rf.Name] = true
		}
	}
	for _, n := range names {
		if !known[n] {
			unknown = append(unknown, n)
		}
	}
	return unknown
}

// InstanceStatus is a point-in-time snapshot of a live instance — what the
// control plane serves on GET /v1/status and exports as Prometheus gauges.
type InstanceStatus struct {
	// Backend is the first attached backend's name (legacy shim); Backends
	// is the full attached set in delivery order. Ranks echoes the start
	// configuration; Adaptive tells whether the overhead-budget controller
	// is attached.
	Backend  Backend  `json:"backend"`
	Backends []string `json:"backends"`
	Ranks    int      `json:"ranks"`
	Adaptive bool     `json:"adaptive"`
	// Instrumented is false for the "xray inactive" baseline.
	Instrumented bool `json:"instrumented"`
	// Runs counts completed phases; Running tells whether one is executing.
	Runs    int  `json:"runs"`
	Running bool `json:"running"`
	// Events is the number of instrumentation events dispatched across all
	// completed phases.
	Events int64 `json:"events"`
	// ActiveFunctions is the current selection size; Patched the start-up
	// count; Reconfigs the applied live re-selections.
	ActiveFunctions int `json:"activeFunctions"`
	Patched         int `json:"patched"`
	Reconfigs       int `json:"reconfigs"`
	// InitSeconds is T_init; ReconfigSeconds the accumulated virtual cost
	// of all re-selections; PendingSeconds the set-up cost the next phase
	// will be billed.
	InitSeconds     float64 `json:"initSeconds"`
	ReconfigSeconds float64 `json:"reconfigSeconds"`
	PendingSeconds  float64 `json:"pendingSeconds"`
	// DroppedInFlight / DroppedUnpatched are the split drop counters;
	// SyntheticExits counts backend-closed dangling enters, with the
	// per-backend-name breakdown alongside.
	DroppedInFlight         int64            `json:"droppedInFlight"`
	DroppedUnpatched        int64            `json:"droppedUnpatched"`
	SyntheticExits          int64            `json:"syntheticExits"`
	SyntheticExitsByBackend map[string]int64 `json:"syntheticExitsByBackend,omitempty"`
	// Async reports whether the asynchronous event pipeline is attached;
	// PipelineDepth is the number of events currently queued in its rings,
	// DroppedAsync the enter/exit pairs rejected under back-pressure, and
	// AsyncBuf the effective per-rank ring capacity in events (the
	// configured -async-buf rounded up to a power of two; 0 when inline).
	Async         bool  `json:"async"`
	PipelineDepth int64 `json:"pipelineDepth"`
	DroppedAsync  int64 `json:"droppedAsync"`
	AsyncBuf      int   `json:"asyncBuf,omitempty"`
	// Sampling is the sampler's live view (policies + conservation
	// counters); nil when no sampling policy was ever installed.
	Sampling *SamplingSnapshot `json:"sampling,omitempty"`
	// DroppedPanicked counts the enters the panic barriers swallowed,
	// summed over every backend ever attached; Breaker is the per-backend
	// barrier state of every backend that ever panicked, and
	// DetachedBackends lists the backends the circuit breaker removed
	// from the live instance, in trip order.
	DroppedPanicked  int64           `json:"droppedPanicked"`
	Breaker          []BreakerStatus `json:"breaker,omitempty"`
	DetachedBackends []string        `json:"detachedBackends,omitempty"`
	// TTL is the ephemeral-probe scheduler's state: pending auto-reverts
	// and the scheduled/expired/canceled counters.
	TTL TTLStatus `json:"ttl"`
	// HTTP is the middleware's per-endpoint request/latency view; nil
	// until a request was observed. SLO is the adapt controller's SLO-mode
	// snapshot; nil in budget mode or on non-adaptive instances.
	HTTP *HTTPStatus `json:"http,omitempty"`
	SLO  *SLOStatus  `json:"slo,omitempty"`
}

// Status returns a consistent snapshot of the instance's live counters.
// Safe to call concurrently with Run and Reconfigure.
func (i *Instance) Status() InstanceStatus {
	st := InstanceStatus{
		Backend:  i.Backend(),
		Backends: i.Backends(),
		Ranks:    i.opts.Ranks,
		Adaptive: i.ctrl != nil,
	}
	i.mu.Lock()
	st.Runs = i.runs
	st.Running = i.running
	st.Events = i.events
	st.PendingSeconds = float64(i.pendingNs) / 1e9
	st.Breaker, st.DetachedBackends, st.DroppedPanicked = i.breakerSnapshotLocked()
	i.mu.Unlock()
	st.TTL = i.ttlStatus()
	if i.rt == nil {
		return st
	}
	snap := i.rt.Snapshot()
	st.Instrumented = true
	st.ActiveFunctions = snap.Active
	st.Patched = snap.Patched
	st.Reconfigs = snap.Reconfigs
	st.InitSeconds = float64(snap.InitVirtualNs) / 1e9
	st.ReconfigSeconds = float64(snap.ReconfigVirtualNs) / 1e9
	st.DroppedInFlight = snap.DroppedInFlight
	st.DroppedUnpatched = snap.DroppedUnpatched
	st.SyntheticExits = snap.SyntheticExits
	st.SyntheticExitsByBackend = snap.SyntheticExitsByBackend
	st.Async = snap.Async
	st.PipelineDepth = snap.AsyncDepth
	st.DroppedAsync = snap.DroppedAsync
	st.AsyncBuf = snap.AsyncBuf
	if snap.Sampling.Configured || snap.Sampling.Counters.Enters > 0 {
		sampling := snap.Sampling
		st.Sampling = &sampling
	}
	st.HTTP = i.HTTPSnapshot()
	if i.ctrl != nil {
		st.SLO = i.ctrl.SLOSnapshot()
	}
	return st
}

// SyntheticExitsByBackend returns the per-backend-name breakdown of the
// synthetic exits closed across all live re-selections and backend swaps.
// Empty when nothing was ever closed.
func (i *Instance) SyntheticExitsByBackend() map[string]int64 {
	if i.rt == nil {
		return nil
	}
	return i.rt.Snapshot().SyntheticExitsByBackend
}

// DroppedEvents returns the split drop accounting of the live runtime:
// inFlight counts events dropped in the window between the latest
// re-selection and its sled restore (the documented drop class), unpatched
// counts sled hits for known functions outside any such window. Both are 0
// for an uninstrumented instance.
func (i *Instance) DroppedEvents() (inFlight, unpatched int64) {
	if i.rt == nil {
		return 0, 0
	}
	return i.rt.DroppedInFlight(), i.rt.DroppedUnpatched()
}

// SyntheticExits returns how many dangling enters the measurement backend
// closed across all live re-selections (ranks caught inside a function when
// it was deselected).
func (i *Instance) SyntheticExits() int64 {
	if i.rt == nil {
		return 0
	}
	return i.rt.SyntheticExits()
}

// Async reports whether the instance runs the asynchronous event pipeline.
func (i *Instance) Async() bool {
	return i.rt != nil && i.rt.AsyncEnabled()
}

// PipelineDepth returns the number of events currently queued in the async
// pipeline's per-rank rings (0 for inline or uninstrumented instances).
func (i *Instance) PipelineDepth() int64 {
	if i.rt == nil {
		return 0
	}
	return i.rt.PipelineDepth()
}

// DroppedAsync returns how many enter/exit pairs the async pipeline rejected
// under back-pressure (0 for inline or uninstrumented instances).
func (i *Instance) DroppedAsync() int64 {
	if i.rt == nil {
		return 0
	}
	return i.rt.DroppedAsync()
}

// DrainPipeline blocks until every event dispatched before the call has been
// delivered through the backend chain — what Run does automatically at phase
// end, exposed for mid-phase report consumers that want catch-up semantics.
// A no-op on inline or uninstrumented instances.
func (i *Instance) DrainPipeline() {
	if i.rt != nil {
		i.rt.DrainPipeline()
	}
}

// Close tears the instance's background machinery down: the TTL scheduler
// is stopped (pending reverts are dropped, not delivered), then the async
// pipeline is drained and its consumer pool stopped. Must not be called
// while a Run executes. A no-op for inline or uninstrumented instances;
// safe to call more than once.
func (i *Instance) Close() {
	i.ttlStop()
	if i.rt != nil {
		i.rt.Close()
	}
}

// Run executes one phase of the workload on the live instance. The first
// call pays the instrumentation start-up (T_init); later calls pay only the
// virtual cost of Reconfigure calls made since the previous phase — the
// instrumentation itself stays up between phases. Concurrent Run calls
// serialize; Reconfigure and the report accessors may land mid-phase.
func (i *Instance) Run() (*RunResult, error) {
	i.runMu.Lock()
	defer i.runMu.Unlock()

	i.mu.Lock()
	world := i.world
	i.world = nil
	if i.runs > 0 {
		// Wall-clock accounting restarts here so time the caller spent
		// between phases (inspecting results, selecting) is not billed to
		// the simulation.
		i.wallStart = time.Now()
	}
	if world == nil {
		// A later phase: fresh world (rank clocks restart at zero), fresh
		// per-phase measurement state in every attached backend, re-armed
		// adaptation controller. The instrumentation runtime and its patched
		// sleds stay up.
		var err error
		world, err = mpi.NewWorld(i.opts.Ranks, mpi.DefaultCostModel())
		if err != nil {
			i.mu.Unlock()
			return nil, err
		}
		for _, mb := range i.backends {
			if err := mb.StartPhase(world); err != nil {
				i.mu.Unlock()
				return nil, fmt.Errorf("capi: backend %q: %w", mb.Name(), err)
			}
		}
		if i.ctrl != nil {
			i.ctrl.NewPhase()
		}
	}
	i.curWorld = world
	i.running = true
	i.mu.Unlock()
	defer func() {
		i.mu.Lock()
		i.running = false
		i.mu.Unlock()
	}()

	// The engine executes without the instance lock held, so control-plane
	// calls (Reconfigure, Status, report scrapes) proceed while ranks run.
	eng, err := exec.New(exec.Config{
		Build:        i.s.build,
		Proc:         i.proc,
		XRay:         i.xr,
		World:        world,
		RankWorkSkew: i.s.opts.RankWorkSkew,
	})
	if err != nil {
		return nil, err
	}
	if err := eng.Run(); err != nil {
		return nil, err
	}
	if i.rt != nil {
		// The engine has joined its rank goroutines. On an async run, drain
		// the pipeline first — events still queued in the rings have not
		// reached the backends yet, and capturing RunResult or backend
		// reports before they land would short-count the phase. Only then
		// publish the exact sampling counters — but only the world's:
		// HTTP worker ranks may still be dispatching request traffic, and
		// their slots are single-writer hot-path state (FlushSampling on
		// a serving instance is the caller's call, once traffic stops).
		i.rt.DrainPipeline()
		if i.opts.HTTPWorkers > 0 {
			i.rt.FlushSamplingRanks(i.opts.Ranks)
		} else {
			i.rt.FlushSampling()
		}
	}

	out := &RunResult{InitSeconds: -1}
	i.mu.Lock()
	if i.rt != nil {
		out.InitSeconds = float64(i.pendingNs) / 1e9
		out.Patched = i.rt.Report().Patched
		out.ActiveFuncs = i.rt.ActiveCount()
		out.Reconfigs = i.rt.Reconfigs()
	}
	for _, r := range world.Ranks() {
		if sec := r.Clock().Seconds(); sec > out.TotalSeconds {
			out.TotalSeconds = sec
		}
	}
	if out.InitSeconds > 0 {
		out.TotalSeconds += out.InitSeconds
	}
	out.Events = eng.TotalEvents()
	if i.ctrl != nil {
		out.DroppedFuncs = i.ctrl.Dropped()
		out.DemotedFuncs = i.ctrl.Demoted()
		out.AdaptEpochs = i.ctrl.Epochs()
	}
	if i.rt != nil {
		if snap := i.rt.SamplingSnapshot(); snap.Configured || snap.Counters.Enters > 0 {
			out.Sampling = &snap
		}
		out.DroppedAsync = i.rt.DroppedAsync()
	}
	backends := i.backends
	out.Breaker, out.DetachedBackends, out.DroppedPanicked = i.breakerSnapshotLocked()
	out.WallSeconds = time.Since(i.wallStart).Seconds()
	i.pendingNs = 0
	i.runs++
	i.events += out.Events
	i.mu.Unlock()
	// The backends' own reports lock internally; build them outside i.mu.
	// Each built-in report is computed once and serves both the envelope
	// entry and the deprecated typed field (Score-P's call-path aggregation
	// in particular is too expensive to run twice per phase). The built-ins
	// are looked up through their panic barrier (unwrapBackend); custom
	// backends report through the guarded wrapper, so a panicking Report
	// degrades to an absent envelope entry instead of unwinding the phase.
	out.Reports = map[string]Report{}
	for _, mb := range backends {
		out.Backends = append(out.Backends, mb.Name())
		var rep Report
		switch b := unwrapBackend(mb).(type) {
		case *talpBackend:
			if r := b.talpReport(); r != nil {
				out.TALP = r
				rep = talpEnvelope{r}
			}
		case *scorepBackend:
			if p := b.profile(); p != nil {
				out.Profile = p
				rep = JSONReport{ReportKind: "profile", Value: p}
			}
		case *extraeBackend:
			if tr := b.traceReport(); tr != nil {
				out.Trace = tr
				rep = JSONReport{ReportKind: "trace", Value: tr}
			}
		default:
			rep = mb.Report()
		}
		if rep != nil {
			out.Reports[mb.Name()] = rep
		}
	}
	return out, nil
}

// Run executes the session's build with the selection patched in at
// start-up, under the chosen measurement backend. A nil selection with
// RunOptions.PatchAll false runs with inactive sleds (the "xray inactive"
// baseline). It is Start followed by one Instance.Run.
func (s *Session) Run(sel *Selection, opts RunOptions) (*RunResult, error) {
	inst, err := s.Start(sel, opts)
	if err != nil {
		return nil, err
	}
	return inst.Run()
}

// RunVanilla executes the uninstrumented build (no sleds at all) and
// returns the virtual runtime — the Table II baseline. The vanilla build is
// compiled on first use and cached.
func (s *Session) RunVanilla(ranks int) (float64, error) {
	if s.vanilla == nil {
		vb, err := compiler.Compile(s.prog, compiler.Options{OptLevel: s.opts.OptLevel})
		if err != nil {
			return 0, err
		}
		s.vanilla = vb
	}
	if ranks <= 0 {
		ranks = 4
	}
	return workload.RunVanilla(s.vanilla, ranks)
}

// RecompileSeconds returns the modelled wall-clock cost of a full rebuild —
// what every IC adjustment costs under the *static* workflow the paper
// replaces (§VII-A; ~50 minutes for full-scale OpenFOAM).
func (s *Session) RecompileSeconds() float64 { return s.build.CompileSeconds }
